#include "index/codec.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "index/simd_intersect.h"
#include "index/simd_unpack.h"

namespace csr {

void PutVarint32(std::string& out, uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* end,
                           uint32_t* v) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < end; shift += 7) {
    uint32_t byte = *p++;
    if (byte & 0x80) {
      result |= (byte & 0x7F) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return p;
    }
  }
  return nullptr;  // truncated or overlong
}

void PostingBlockCodec::Encode(std::span<const Posting> postings, DocId base,
                               std::string& out) {
  DocId prev = base;
  for (const Posting& p : postings) {
    PutVarint32(out, p.doc - prev);
    prev = p.doc;
  }
  for (const Posting& p : postings) PutVarint32(out, p.tf);
}

Status PostingBlockCodec::DecodeDocs(std::string_view in, DocId base,
                                     size_t count, std::vector<DocId>& docs,
                                     size_t* tf_offset) {
  docs.resize(count);
  const uint8_t* start = reinterpret_cast<const uint8_t*>(in.data());
  const uint8_t* p = start;
  const uint8_t* end = p + in.size();
  DocId prev = base;
  bool first = true;
  for (size_t i = 0; i < count; ++i) {
    uint32_t delta;
    p = GetVarint32(p, end, &delta);
    if (p == nullptr) return Status::OutOfRange("truncated posting block");
    if (!first && delta == 0) {
      return Status::InvalidArgument("non-increasing docid in block");
    }
    prev += delta;
    first = false;
    docs[i] = prev;
  }
  *tf_offset = static_cast<size_t>(p - start);
  return Status::OK();
}

Status PostingBlockCodec::DecodeTfs(std::string_view in, size_t tf_offset,
                                    size_t count,
                                    std::vector<uint32_t>& tfs) {
  if (tf_offset > in.size()) {
    return Status::OutOfRange("truncated tf section");
  }
  tfs.resize(count);
  const uint8_t* p =
      reinterpret_cast<const uint8_t*>(in.data()) + tf_offset;
  const uint8_t* end = reinterpret_cast<const uint8_t*>(in.data()) + in.size();
  for (size_t i = 0; i < count; ++i) {
    p = GetVarint32(p, end, &tfs[i]);
    if (p == nullptr) return Status::OutOfRange("truncated tf section");
  }
  return Status::OK();
}

Status PostingBlockCodec::Decode(std::string_view in, DocId base,
                                 size_t count, std::vector<Posting>& out) {
  std::vector<DocId> docs;
  std::vector<uint32_t> tfs;
  size_t tf_offset = 0;
  CSR_RETURN_NOT_OK(DecodeDocs(in, base, count, docs, &tf_offset));
  CSR_RETURN_NOT_OK(DecodeTfs(in, tf_offset, count, tfs));
  out.resize(count);
  for (size_t i = 0; i < count; ++i) out[i] = Posting{docs[i], tfs[i]};
  return Status::OK();
}

namespace {

inline uint32_t BitsNeeded(uint32_t v) {
  return v == 0 ? 0 : 32 - static_cast<uint32_t>(std::countl_zero(v));
}

inline size_t PackedBytes(size_t count, uint32_t bits) {
  return (count * bits + 7) / 8;
}

/// Computes the per-value maximum bit widths of a block without building
/// the delta array. First delta is doc0 - base; later deltas are stored
/// minus 1 (consecutive docids pack to width 0).
void ForWidths(std::span<const Posting> postings, DocId base,
               uint32_t* doc_bits, uint32_t* tf_bits) {
  uint32_t db = 0, tb = 0;
  DocId prev = base;
  bool first = true;
  for (const Posting& p : postings) {
    uint32_t delta = first ? p.doc - prev : p.doc - prev - 1;
    db = std::max(db, BitsNeeded(delta));
    tb = std::max(tb, BitsNeeded(p.tf));
    prev = p.doc;
    first = false;
  }
  *doc_bits = db;
  *tf_bits = tb;
}

}  // namespace

void ForBlockCodec::PackBits(const uint32_t* values, size_t count,
                             uint32_t bits, std::string& out) {
  if (bits == 0) return;
  uint64_t acc = 0;
  uint32_t acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    acc |= static_cast<uint64_t>(values[i]) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out.push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out.push_back(static_cast<char>(acc & 0xFF));
}

Status ForBlockCodec::UnpackBits(const uint8_t* p, size_t avail,
                                 size_t count, uint32_t bits,
                                 uint32_t* out) {
  if (bits == 0) {
    std::fill(out, out + count, 0u);
    return Status::OK();
  }
  if (bits > 32) return Status::InvalidArgument("bit width > 32");
  if (PackedBytes(count, bits) > avail) {
    return Status::OutOfRange("truncated bit-packed section");
  }
  // Validation done; the unpack itself goes through the runtime-dispatched
  // kernel (simd_unpack.cc: scalar / SSE2 / AVX2, bit-identical output).
  // Values are extracted low-bits-first, so a wide load that pulls in
  // bytes past the packed section (but within `avail`) never contaminates
  // the decoded values.
  UnpackBitsDispatch(p, avail, count, bits, out);
  return Status::OK();
}

void ForBlockCodec::Encode(std::span<const Posting> postings, DocId base,
                           std::string& out) {
  uint32_t doc_bits = 0, tf_bits = 0;
  ForWidths(postings, base, &doc_bits, &tf_bits);
  out.push_back(static_cast<char>(doc_bits));
  out.push_back(static_cast<char>(tf_bits));

  std::vector<uint32_t> scratch(postings.size());
  DocId prev = base;
  bool first = true;
  for (size_t i = 0; i < postings.size(); ++i) {
    scratch[i] = first ? postings[i].doc - prev : postings[i].doc - prev - 1;
    prev = postings[i].doc;
    first = false;
  }
  PackBits(scratch.data(), scratch.size(), doc_bits, out);
  for (size_t i = 0; i < postings.size(); ++i) scratch[i] = postings[i].tf;
  PackBits(scratch.data(), scratch.size(), tf_bits, out);
}

size_t ForBlockCodec::EncodedSize(std::span<const Posting> postings,
                                  DocId base) {
  uint32_t doc_bits = 0, tf_bits = 0;
  ForWidths(postings, base, &doc_bits, &tf_bits);
  return 2 + PackedBytes(postings.size(), doc_bits) +
         PackedBytes(postings.size(), tf_bits);
}

Status ForBlockCodec::DecodeDocs(std::string_view in, DocId base,
                                 size_t count, std::vector<DocId>& docs,
                                 size_t* tf_offset) {
  if (in.size() < 2) return Status::OutOfRange("truncated FOR header");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data());
  uint32_t doc_bits = p[0];
  uint32_t tf_bits = p[1];
  if (doc_bits > 32 || tf_bits > 32) {
    return Status::InvalidArgument("corrupt FOR bit width");
  }
  size_t doc_bytes = PackedBytes(count, doc_bits);
  size_t tf_bytes = PackedBytes(count, tf_bits);
  if (in.size() < 2 + doc_bytes + tf_bytes) {
    return Status::OutOfRange("truncated FOR block");
  }

  // Unpack the deltas directly into the output, then prefix-sum in place.
  // Monotonicity means overflow anywhere implies overflow of the final
  // docid, so one check at the end suffices.
  docs.resize(count);
  CSR_RETURN_NOT_OK(UnpackBits(p + 2, doc_bytes, count, doc_bits,
                               docs.data()));
  uint64_t prev = base;
  for (size_t i = 0; i < count; ++i) {
    prev += i == 0 ? static_cast<uint64_t>(docs[i])
                   : static_cast<uint64_t>(docs[i]) + 1;
    docs[i] = static_cast<DocId>(prev);
  }
  if (count > 0 && prev > kInvalidDocId - 1) {
    return Status::InvalidArgument("docid overflow in FOR block");
  }
  *tf_offset = 2 + doc_bytes;
  return Status::OK();
}

Status ForBlockCodec::DecodeTfs(std::string_view in, size_t tf_offset,
                                size_t count, std::vector<uint32_t>& tfs) {
  if (in.size() < 2 || tf_offset > in.size()) {
    return Status::OutOfRange("truncated FOR block");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data());
  uint32_t tf_bits = p[1];
  if (tf_bits > 32) return Status::InvalidArgument("corrupt FOR bit width");
  size_t tf_bytes = PackedBytes(count, tf_bits);
  if (in.size() < tf_offset + tf_bytes) {
    return Status::OutOfRange("truncated FOR block");
  }
  tfs.resize(count);
  return UnpackBits(p + tf_offset, tf_bytes, count, tf_bits, tfs.data());
}

Status ForBlockCodec::Decode(std::string_view in, DocId base, size_t count,
                             std::vector<Posting>& out) {
  std::vector<DocId> docs;
  std::vector<uint32_t> tfs;
  size_t tf_offset = 0;
  CSR_RETURN_NOT_OK(DecodeDocs(in, base, count, docs, &tf_offset));
  CSR_RETURN_NOT_OK(DecodeTfs(in, tf_offset, count, tfs));
  out.resize(count);
  for (size_t i = 0; i < count; ++i) out[i] = Posting{docs[i], tfs[i]};
  return Status::OK();
}

namespace {

inline size_t BitmapBytesFor(uint32_t range) { return (range + 7) / 8; }

/// Max tf bit width of a block (the bitmap header's only per-value width).
uint32_t TfWidth(std::span<const Posting> postings) {
  uint32_t tb = 0;
  for (const Posting& p : postings) tb = std::max(tb, BitsNeeded(p.tf));
  return tb;
}

}  // namespace

size_t BitmapBlockCodec::EncodedSize(std::span<const Posting> postings,
                                     DocId base) {
  if (postings.empty()) return SIZE_MAX;
  // Bit 0 maps to docid base + 1: a first block starting at docid 0 (doc
  // == base == 0) has no slot, so it cannot be bitmapped.
  if (postings.front().doc <= base) return SIZE_MAX;
  uint32_t range = postings.back().doc - base;
  if (range > kMaxRange) return SIZE_MAX;
  return 1 + 4 + BitmapBytesFor(range) +
         PackedBytes(postings.size(), TfWidth(postings));
}

void BitmapBlockCodec::Encode(std::span<const Posting> postings, DocId base,
                              std::string& out) {
  const uint32_t range = postings.back().doc - base;
  const uint32_t tf_bits = TfWidth(postings);
  out.push_back(static_cast<char>(tf_bits));
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>((range >> (8 * b)) & 0xFF));
  }
  const size_t bm_start = out.size();
  out.append(BitmapBytesFor(range), '\0');
  for (const Posting& p : postings) {
    uint32_t off = p.doc - base - 1;  // bit 0 <=> docid base + 1
    out[bm_start + (off >> 3)] |= static_cast<char>(1u << (off & 7));
  }
  std::vector<uint32_t> tfs(postings.size());
  for (size_t i = 0; i < postings.size(); ++i) tfs[i] = postings[i].tf;
  ForBlockCodec::PackBits(tfs.data(), tfs.size(), tf_bits, out);
}

Result<BitmapBlockCodec::View> BitmapBlockCodec::MakeView(
    std::string_view in, DocId base) {
  if (in.size() < 5) return Status::OutOfRange("truncated bitmap header");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data());
  uint32_t range = 0;
  for (int b = 0; b < 4; ++b) range |= static_cast<uint32_t>(p[1 + b]) << (8 * b);
  if (range == 0 || range > kMaxRange) {
    return Status::InvalidArgument("corrupt bitmap range");
  }
  if (in.size() < 5 + BitmapBytesFor(range)) {
    return Status::OutOfRange("truncated bitmap block");
  }
  if (base + static_cast<uint64_t>(range) >= kInvalidDocId) {
    return Status::InvalidArgument("docid overflow in bitmap block");
  }
  View v;
  v.bits = p + 5;
  v.range = range;
  v.first = base + 1;
  return v;
}

Status BitmapBlockCodec::DecodeDocs(std::string_view in, DocId base,
                                    size_t count, std::vector<DocId>& docs,
                                    size_t* tf_offset) {
  auto view_r = MakeView(in, base);
  CSR_RETURN_NOT_OK(view_r.status());
  const View& v = view_r.value();
  if (v.range < count) {
    return Status::InvalidArgument("bitmap range below block count");
  }
  const size_t bm_bytes = BitmapBytesFor(v.range);
  docs.clear();
  docs.reserve(count);
  // Word-wise scan: load 8 bitmap bytes at a time, peel set bits with
  // countr_zero. Bits at or past `range` in the final word must be zero —
  // set ones are corruption, as is any population other than `count`.
  for (size_t byte = 0; byte < bm_bytes; byte += 8) {
    uint64_t w = 0;
    size_t n = std::min<size_t>(8, bm_bytes - byte);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&w, v.bits + byte, n);
    } else {
      for (size_t k = 0; k < n; ++k) {
        w |= static_cast<uint64_t>(v.bits[byte + k]) << (8 * k);
      }
    }
    const uint64_t bit_base = byte * 8;
    if (bit_base + 64 > v.range) {
      uint64_t valid = v.range - bit_base;  // < 64
      if ((w >> valid) != 0) {
        return Status::InvalidArgument("bitmap bits set past range");
      }
    }
    while (w != 0) {
      unsigned b = static_cast<unsigned>(std::countr_zero(w));
      if (docs.size() == count) {
        return Status::InvalidArgument("bitmap population mismatch");
      }
      docs.push_back(v.first + static_cast<DocId>(bit_base + b));
      w &= w - 1;
    }
  }
  if (docs.size() != count) {
    return Status::InvalidArgument("bitmap population mismatch");
  }
  *tf_offset = 5 + bm_bytes;
  return Status::OK();
}

Status BitmapBlockCodec::DecodeTfs(std::string_view in, size_t tf_offset,
                                   size_t count, std::vector<uint32_t>& tfs) {
  if (in.size() < 5 || tf_offset > in.size()) {
    return Status::OutOfRange("truncated bitmap block");
  }
  uint32_t tf_bits = static_cast<uint8_t>(in[0]);
  if (tf_bits > 32) {
    return Status::InvalidArgument("corrupt bitmap tf width");
  }
  size_t tf_bytes = PackedBytes(count, tf_bits);
  if (in.size() < tf_offset + tf_bytes) {
    return Status::OutOfRange("truncated bitmap block");
  }
  tfs.resize(count);
  return ForBlockCodec::UnpackBits(
      reinterpret_cast<const uint8_t*>(in.data()) + tf_offset, tf_bytes,
      count, tf_bits, tfs.data());
}

Status BitmapBlockCodec::Decode(std::string_view in, DocId base,
                                size_t count, std::vector<Posting>& out) {
  std::vector<DocId> docs;
  std::vector<uint32_t> tfs;
  size_t tf_offset = 0;
  CSR_RETURN_NOT_OK(DecodeDocs(in, base, count, docs, &tf_offset));
  CSR_RETURN_NOT_OK(DecodeTfs(in, tf_offset, count, tfs));
  out.resize(count);
  for (size_t i = 0; i < count; ++i) out[i] = Posting{docs[i], tfs[i]};
  return Status::OK();
}

namespace {

/// Encodes one block with a leading codec tag, picking the smallest
/// encoding under kAuto (the auto-selection rule: FOR's and the bitmap's
/// sizes are computed analytically, varint's by encoding into scratch).
BlockCodec EncodeTaggedBlock(std::span<const Posting> block, DocId base,
                             CodecPolicy policy, std::string& out,
                             std::string& scratch) {
  BlockCodec pick;
  switch (policy) {
    case CodecPolicy::kVarintOnly:
      pick = BlockCodec::kVarint;
      break;
    case CodecPolicy::kForOnly:
      pick = BlockCodec::kFor;
      break;
    case CodecPolicy::kBitmapPreferred: {
      // Bitmap whenever representable without exceeding the uncompressed
      // footprint; FOR otherwise (sparse blocks would explode as bitsets).
      size_t bm = BitmapBlockCodec::EncodedSize(block, base);
      pick = bm != SIZE_MAX && bm <= block.size() * sizeof(Posting)
                 ? BlockCodec::kBitmap
                 : BlockCodec::kFor;
      break;
    }
    case CodecPolicy::kAuto:
    default: {
      scratch.clear();
      PostingBlockCodec::Encode(block, base, scratch);
      size_t var_size = scratch.size();
      size_t for_size = ForBlockCodec::EncodedSize(block, base);
      size_t bm_size = BitmapBlockCodec::EncodedSize(block, base);
      if (bm_size <= for_size && bm_size <= var_size) {
        pick = BlockCodec::kBitmap;  // ties go to the faster probes
      } else if (for_size < var_size) {
        pick = BlockCodec::kFor;
      } else {
        pick = BlockCodec::kVarint;
      }
      break;
    }
  }
  out.push_back(static_cast<char>(pick));
  switch (pick) {
    case BlockCodec::kFor:
      ForBlockCodec::Encode(block, base, out);
      break;
    case BlockCodec::kBitmap:
      BitmapBlockCodec::Encode(block, base, out);
      break;
    case BlockCodec::kVarint:
      if (policy == CodecPolicy::kAuto) {
        out.append(scratch);  // already encoded by the size probe
      } else {
        PostingBlockCodec::Encode(block, base, out);
      }
      break;
  }
  return pick;
}

/// Decodes a tagged block. Typed errors on unknown tags or corrupt bodies.
Status DecodeTaggedBlock(std::string_view in, DocId base, size_t count,
                         std::vector<Posting>& out) {
  if (in.empty()) return Status::OutOfRange("empty posting block");
  auto tag = static_cast<uint8_t>(in[0]);
  std::string_view body = in.substr(1);
  switch (static_cast<BlockCodec>(tag)) {
    case BlockCodec::kVarint:
      return PostingBlockCodec::Decode(body, base, count, out);
    case BlockCodec::kFor:
      return ForBlockCodec::Decode(body, base, count, out);
    case BlockCodec::kBitmap:
      return BitmapBlockCodec::Decode(body, base, count, out);
  }
  return Status::InvalidArgument("unknown posting block codec tag");
}

/// Split-decode variants for the iterator's lazy-tf path. `tf_offset` is
/// relative to the block body (after the tag byte).
Status DecodeTaggedDocs(std::string_view in, DocId base, size_t count,
                        std::vector<DocId>& docs, size_t* tf_offset) {
  if (in.empty()) return Status::OutOfRange("empty posting block");
  auto tag = static_cast<uint8_t>(in[0]);
  std::string_view body = in.substr(1);
  switch (static_cast<BlockCodec>(tag)) {
    case BlockCodec::kVarint:
      return PostingBlockCodec::DecodeDocs(body, base, count, docs,
                                           tf_offset);
    case BlockCodec::kFor:
      return ForBlockCodec::DecodeDocs(body, base, count, docs, tf_offset);
    case BlockCodec::kBitmap:
      return BitmapBlockCodec::DecodeDocs(body, base, count, docs,
                                          tf_offset);
  }
  return Status::InvalidArgument("unknown posting block codec tag");
}

Status DecodeTaggedTfs(std::string_view in, size_t tf_offset, size_t count,
                       std::vector<uint32_t>& tfs) {
  if (in.empty()) return Status::OutOfRange("empty posting block");
  auto tag = static_cast<uint8_t>(in[0]);
  std::string_view body = in.substr(1);
  switch (static_cast<BlockCodec>(tag)) {
    case BlockCodec::kVarint:
      return PostingBlockCodec::DecodeTfs(body, tf_offset, count, tfs);
    case BlockCodec::kFor:
      return ForBlockCodec::DecodeTfs(body, tf_offset, count, tfs);
    case BlockCodec::kBitmap:
      return BitmapBlockCodec::DecodeTfs(body, tf_offset, count, tfs);
  }
  return Status::InvalidArgument("unknown posting block codec tag");
}

}  // namespace

namespace {

// Process-wide decode tallies (same relaxed-atomic idiom as the intersect
// kernel tallies): charged on every successful docid-section decode and on
// every arena-served block load. Benches snapshot deltas.
std::atomic<uint64_t> g_blocks_decoded{0};
std::atomic<uint64_t> g_arena_hits{0};

thread_local DecodedBlockArena* tl_active_arena = nullptr;

}  // namespace

DecodeTallies SnapshotDecodeTallies() {
  DecodeTallies t;
  t.blocks_decoded = g_blocks_decoded.load(std::memory_order_relaxed);
  t.arena_hits = g_arena_hits.load(std::memory_order_relaxed);
  return t;
}

DecodedBlockArena::Scope::Scope(DecodedBlockArena* arena)
    : prev_(tl_active_arena) {
  tl_active_arena = arena;
}

DecodedBlockArena::Scope::~Scope() { tl_active_arena = prev_; }

DecodedBlockArena* DecodedBlockArena::Active() { return tl_active_arena; }

const DecodedBlockArena::Entry* DecodedBlockArena::GetDocs(
    const CompressedPostingList* list, size_t block) {
  auto it = map_.find(Key{list, block});
  if (it != map_.end()) {
    ++hits_;
    g_arena_hits.fetch_add(1, std::memory_order_relaxed);
    return &it->second;
  }
  // At the byte bound new blocks decode privately and are not cached — the
  // arena degrades to a no-op rather than growing without bound.
  if (bytes_ >= max_bytes_) return nullptr;
  const CompressedPostingList::BlockMeta& meta = list->blocks()[block];
  Entry e;
  Status s = DecodeTaggedDocs(list->BlockBytes(block), meta.base, meta.count,
                              e.docs, &e.tf_offset);
  if (!s.ok() || e.docs.empty()) return nullptr;  // caller poisons privately
  ++misses_;
  g_blocks_decoded.fetch_add(1, std::memory_order_relaxed);
  bytes_ += e.docs.size() * sizeof(DocId);
  auto [ins, inserted] = map_.emplace(Key{list, block}, std::move(e));
  (void)inserted;
  return &ins->second;
}

const DecodedBlockArena::Entry* DecodedBlockArena::GetTfs(
    const CompressedPostingList* list, size_t block) {
  auto it = map_.find(Key{list, block});
  if (it == map_.end()) return nullptr;
  Entry& e = it->second;
  if (!e.tfs_loaded) {
    if (bytes_ >= max_bytes_) return nullptr;
    const CompressedPostingList::BlockMeta& meta = list->blocks()[block];
    Status s = DecodeTaggedTfs(list->BlockBytes(block), e.tf_offset,
                               meta.count, e.tfs);
    if (!s.ok()) {
      e.tfs.clear();
      return nullptr;
    }
    e.tfs_loaded = true;
    bytes_ += e.tfs.size() * sizeof(uint32_t);
  }
  return &e;
}

void DecodedBlockArena::Clear() {
  map_.clear();
  bytes_ = 0;
}

CompressedPostingList CompressedPostingList::FromPostings(
    std::span<const Posting> postings, uint32_t block_size,
    CodecPolicy policy) {
  CompressedPostingList out;
  out.block_size_ = block_size == 0 ? kDefaultBlockSize : block_size;
  out.num_postings_ = postings.size();

  std::string scratch;
  DocId base = 0;
  for (size_t i = 0; i < postings.size(); i += out.block_size_) {
    size_t n = std::min<size_t>(out.block_size_, postings.size() - i);
    std::span<const Posting> block = postings.subspan(i, n);

    BlockMeta meta;
    meta.base = base;
    meta.max_doc = block.back().doc;
    meta.offset = static_cast<uint32_t>(out.bytes_.size());
    meta.count = static_cast<uint32_t>(n);
    meta.max_tf = 0;
    for (const Posting& p : block) {
      meta.max_tf = std::max(meta.max_tf, p.tf);
      out.total_tf_ += p.tf;
    }
    out.max_tf_ = std::max(out.max_tf_, meta.max_tf);
    BlockCodec picked =
        EncodeTaggedBlock(block, base, policy, out.bytes_, scratch);
    out.codec_counts_[static_cast<size_t>(picked)]++;
    out.blocks_.push_back(meta);
    base = meta.max_doc;
  }
  return out;
}

CompressedPostingList CompressedPostingList::FromPostingList(
    const PostingList& list, uint32_t block_size, CodecPolicy policy) {
  std::vector<Posting> postings;
  postings.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) postings.push_back(list.at(i));
  return FromPostings(postings, block_size, policy);
}

Result<CompressedPostingList> CompressedPostingList::FromParts(Parts parts) {
  CompressedPostingList out;
  out.block_size_ = parts.block_size == 0 ? kDefaultBlockSize
                                          : parts.block_size;
  out.num_postings_ = parts.num_postings;
  out.total_tf_ = parts.total_tf;
  out.max_tf_ = parts.max_tf;
  out.bytes_ = std::move(parts.bytes);
  out.blocks_ = std::move(parts.blocks);

  uint64_t counted = 0;
  for (size_t b = 0; b < out.blocks_.size(); ++b) {
    const BlockMeta& m = out.blocks_[b];
    if (m.count == 0 || m.count > out.block_size_) {
      return Status::InvalidArgument("corrupt block count");
    }
    if (m.offset >= out.bytes_.size()) {
      return Status::InvalidArgument("block offset beyond encoded bytes");
    }
    if (b == 0) {
      if (m.offset != 0 || m.base != 0) {
        return Status::InvalidArgument("corrupt first block metadata");
      }
    } else {
      const BlockMeta& prev = out.blocks_[b - 1];
      if (m.offset <= prev.offset || m.base != prev.max_doc ||
          m.max_doc <= prev.max_doc) {
        return Status::InvalidArgument("non-monotone block metadata");
      }
    }
    if (m.max_tf > out.max_tf_) {
      return Status::InvalidArgument("block max_tf exceeds list max_tf");
    }
    // The codec tag is part of the persisted bytes; an unknown value means
    // the file was corrupted (or written by a future format) — reject here
    // so the snapshot loader can fall back to a rebuild instead of
    // poisoning iterators at query time.
    uint8_t tag = static_cast<uint8_t>(out.bytes_[m.offset]);
    if (tag > static_cast<uint8_t>(BlockCodec::kBitmap)) {
      return Status::InvalidArgument("unknown posting block codec tag");
    }
    out.codec_counts_[tag]++;
    counted += m.count;
  }
  if (counted != out.num_postings_) {
    return Status::InvalidArgument("block counts disagree with list size");
  }
  if (out.blocks_.empty() != (out.num_postings_ == 0)) {
    return Status::InvalidArgument("block directory / size mismatch");
  }
  return out;
}

bool CompressedPostingList::BlockBound(DocId target, size_t hint,
                                       DocId* block_last_doc,
                                       uint32_t* block_max_tf) const {
  size_t b = std::min(hint, blocks_.size());
  if (b >= blocks_.size()) return false;
  if (blocks_[b].max_doc < target) {
    auto it = std::lower_bound(
        blocks_.begin() + b + 1, blocks_.end(), target,
        [](const BlockMeta& m, DocId t) { return m.max_doc < t; });
    if (it == blocks_.end()) return false;
    b = static_cast<size_t>(it - blocks_.begin());
  }
  *block_last_doc = blocks_[b].max_doc;
  *block_max_tf = blocks_[b].max_tf;
  return true;
}

std::string_view CompressedPostingList::BlockBytes(size_t block) const {
  const BlockMeta& meta = blocks_[block];
  size_t end =
      (block + 1 < blocks_.size()) ? blocks_[block + 1].offset : bytes_.size();
  return std::string_view(bytes_.data() + meta.offset, end - meta.offset);
}

std::vector<Posting> CompressedPostingList::Decode() const {
  std::vector<Posting> all;
  all.reserve(num_postings_);
  std::vector<Posting> block;
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const BlockMeta& meta = blocks_[b];
    // Corruption is impossible for self-built lists; assert via ok().
    Status s = DecodeTaggedBlock(BlockBytes(b), meta.base, meta.count, block);
    if (!s.ok()) return all;
    all.insert(all.end(), block.begin(), block.end());
  }
  return all;
}

CompressedPostingList::Iterator::Iterator(const CompressedPostingList* list,
                                          CostCounters* cost)
    : list_(list), cost_(cost) {
  if (list_->blocks_.empty()) {
    at_end_ = true;
    return;
  }
  LoadBlock(0);
}

std::string_view CompressedPostingList::Iterator::BlockBytes(
    size_t block) const {
  return list_->BlockBytes(block);
}

void CompressedPostingList::Iterator::LoadBlock(size_t block) {
  block_ = block;
  pos_ = 0;
  tfs_loaded_ = false;
  tfs_ = {};
  const BlockMeta& meta = list_->blocks_[block];
  if (DecodedBlockArena* arena = DecodedBlockArena::Active()) {
    if (const DecodedBlockArena::Entry* e = arena->GetDocs(list_, block)) {
      // Shared decode: every iterator in the batch views the same run, but
      // the cost charge is identical to a private decode — per-query
      // counters must not depend on batch composition.
      docs_ = std::span<const DocId>(e->docs);
      tf_offset_ = e->tf_offset;
      if (cost_ != nullptr) {
        cost_->segments_touched++;
        cost_->bytes_touched += 1 + tf_offset_;  // tag + docid section
      }
      return;
    }
    // nullptr: arena at its byte bound, or a corrupt block — decode
    // privately, exactly as without an arena.
  }
  Status s = DecodeTaggedDocs(BlockBytes(block), meta.base, meta.count,
                              own_docs_, &tf_offset_);
  if (!s.ok() || own_docs_.empty()) {
    // Defensive: self-built lists cannot hit this, and persisted lists are
    // whole-file checksummed before they get here. Poison rather than UB.
    own_docs_.clear();
    docs_ = {};
    at_end_ = true;
    return;
  }
  g_blocks_decoded.fetch_add(1, std::memory_order_relaxed);
  docs_ = std::span<const DocId>(own_docs_);
  if (cost_ != nullptr) {
    cost_->segments_touched++;
    cost_->bytes_touched += 1 + tf_offset_;  // tag + docid section
  }
}

void CompressedPostingList::Iterator::LoadTfs() const {
  tfs_loaded_ = true;
  if (at_end_ || docs_.empty()) {
    own_tfs_.clear();
    tfs_ = {};
    return;
  }
  std::string_view raw = BlockBytes(block_);
  if (DecodedBlockArena* arena = DecodedBlockArena::Active()) {
    if (const DecodedBlockArena::Entry* e = arena->GetTfs(list_, block_)) {
      tfs_ = std::span<const uint32_t>(e->tfs);
      if (cost_ != nullptr) {
        cost_->bytes_touched += raw.size() - (1 + tf_offset_);
      }
      return;
    }
  }
  Status s = DecodeTaggedTfs(raw, tf_offset_, list_->blocks_[block_].count,
                             own_tfs_);
  if (!s.ok()) {
    own_tfs_.clear();  // tf() degrades to 0; docids stay servable
    tfs_ = {};
    return;
  }
  tfs_ = std::span<const uint32_t>(own_tfs_);
  if (cost_ != nullptr) {
    cost_->bytes_touched += raw.size() - (1 + tf_offset_);
  }
}

void CompressedPostingList::Iterator::Next() {
  if (cost_ != nullptr) cost_->entries_scanned++;
  ++pos_;
  if (pos_ >= docs_.size()) {
    if (block_ + 1 >= list_->blocks_.size()) {
      at_end_ = true;
      return;
    }
    LoadBlock(block_ + 1);
  }
}

void CompressedPostingList::Iterator::SkipTo(DocId target) {
  if (at_end_) return;
  if (docs_[pos_] >= target) return;

  const auto& blocks = list_->blocks_;
  if (blocks[block_].max_doc < target) {
    // Gallop over block metadata: exponential probes bracket the first
    // block whose max_doc >= target, then binary search the bracket. The
    // skipped blocks are never decoded.
    size_t bound = 1;
    while (block_ + bound < blocks.size() &&
           blocks[block_ + bound].max_doc < target) {
      bound <<= 1;
    }
    size_t lo = block_ + bound / 2 + 1;
    size_t hi = std::min(block_ + bound + 1, blocks.size());
    auto it = std::lower_bound(
        blocks.begin() + lo, blocks.begin() + hi, target,
        [](const BlockMeta& m, DocId t) { return m.max_doc < t; });
    if (cost_ != nullptr) cost_->skips_taken++;
    if (it == blocks.begin() + hi && hi == blocks.size()) {
      at_end_ = true;
      return;
    }
    size_t next = static_cast<size_t>(it - blocks.begin());
    if (cost_ != nullptr) cost_->blocks_skipped += next - block_ - 1;
    LoadBlock(next);
    if (at_end_) return;  // poisoned by a decode failure
  }

  if (docs_[pos_] >= target) {
    if (cost_ != nullptr) cost_->entries_scanned++;
    return;
  }
  // Gallop within the decoded buffer; docs_[pos_] < target and the
  // located block's max_doc >= target guarantee a hit past pos_.
  size_t bound = 1;
  size_t probes = 1;
  while (pos_ + bound < docs_.size() && docs_[pos_ + bound] < target) {
    bound <<= 1;
    ++probes;
  }
  size_t lo = pos_ + bound / 2 + 1;
  size_t hi = std::min(pos_ + bound + 1, docs_.size());
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    ++probes;
    if (docs_[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  pos_ = lo;
  if (cost_ != nullptr) cost_->entries_scanned += probes;
}

void CompressedPostingList::Iterator::MergeTo(DocId target) {
  while (!at_end_ && docs_[pos_] < target) {
    if (pos_ + 1 < docs_.size()) {
      ++pos_;
      if (cost_ != nullptr) cost_->entries_scanned++;
    } else if (block_ + 1 < list_->blocks_.size() &&
               list_->blocks_[block_ + 1].max_doc >= target) {
      LoadBlock(block_ + 1);
      if (cost_ != nullptr) cost_->entries_scanned++;
    } else {
      // Either exhausted or the next block(s) lie entirely below target:
      // let SkipTo bypass them without decoding.
      SkipTo(target);
      return;
    }
  }
}

namespace {

/// 64 bitmap bits starting at bit `bit_off`; bits past the bitmap's end
/// read as zero. LSB of the result is bit `bit_off`.
inline uint64_t BitmapWindow(const uint8_t* bits, size_t nbytes,
                             uint64_t bit_off) {
  const size_t byte = bit_off >> 3;
  const unsigned sh = static_cast<unsigned>(bit_off & 7);
  if (byte >= nbytes) return 0;
  const size_t n = nbytes - byte;
  uint64_t lo = 0;
  uint8_t ex = 0;
  if constexpr (std::endian::native == std::endian::little) {
    if (n >= 9) {
      std::memcpy(&lo, bits + byte, 8);
      ex = bits[byte + 8];
    } else {
      std::memcpy(&lo, bits + byte, std::min<size_t>(n, 8));
    }
  } else {
    for (size_t k = 0; k < n && k < 8; ++k) {
      lo |= static_cast<uint64_t>(bits[byte + k]) << (8 * k);
    }
    if (n >= 9) ex = bits[byte + 8];
  }
  return sh == 0 ? lo
                 : (lo >> sh) | (static_cast<uint64_t>(ex) << (64 - sh));
}

/// One side of the pairwise kernel: walks the block directory forward,
/// materializing per block either the bitmap view (zero-copy) or the
/// decoded docid array — whichever the probes need — and charging the
/// block's decode bytes to CostCounters exactly once however many probes
/// land in it.
class PairwiseSide {
 public:
  PairwiseSide(const CompressedPostingList& list, CostCounters* cost)
      : list_(list), cost_(cost) {}

  bool exhausted() const { return cur_ >= list_.num_blocks(); }
  const CompressedPostingList::BlockMeta& meta() const {
    return list_.blocks()[cur_];
  }
  bool loaded() const { return charged_; }
  size_t current_block() const { return cur_; }

  void MoveTo(size_t next) {
    cur_ = next;
    tagged_ = false;
    view_ok_ = false;
    docs_ok_ = false;
    charged_ = false;
    pos_ = 0;
  }

  /// Advances the current block until meta().max_doc >= d (gallop +
  /// binary search over the directory, skipped blocks never decoded).
  bool SeekBlock(DocId d) {
    auto blocks = list_.blocks();
    if (cur_ >= blocks.size()) return false;
    if (blocks[cur_].max_doc >= d) return true;
    size_t bound = 1;
    while (cur_ + bound < blocks.size() &&
           blocks[cur_ + bound].max_doc < d) {
      bound <<= 1;
    }
    size_t lo = cur_ + bound / 2 + 1;
    size_t hi = std::min(cur_ + bound + 1, blocks.size());
    auto it = std::lower_bound(
        blocks.begin() + lo, blocks.begin() + hi, d,
        [](const CompressedPostingList::BlockMeta& m, DocId t) {
          return m.max_doc < t;
        });
    size_t next = static_cast<size_t>(it - blocks.begin());
    if (cost_ != nullptr) {
      cost_->skips_taken++;
      if (next > cur_ + 1) cost_->blocks_skipped += next - cur_ - 1;
    }
    MoveTo(next);
    return cur_ < blocks.size();
  }

  bool IsBitmap() {
    if (!tagged_) {
      tagged_ = true;
      is_bitmap_ = list_.BlockCodecTag(cur_) == BlockCodec::kBitmap;
    }
    return is_bitmap_;
  }

  /// Zero-copy bitmap view of the current (bitmap) block.
  const BitmapBlockCodec::View& View() {
    if (!view_ok_) {
      view_ok_ = true;
      std::string_view raw = list_.BlockBytes(cur_);
      auto v = BitmapBlockCodec::MakeView(raw.substr(1), meta().base);
      // Self-built or checksum-verified bytes; a failure here means the
      // in-memory image was corrupted. Poison to an empty view.
      view_ = v.ok() ? v.value() : BitmapBlockCodec::View{};
      ChargeOnce(1 + 5 + (static_cast<size_t>(view_.range) + 7) / 8);
    }
    return view_;
  }

  /// Decoded docids of the current block (any representation).
  std::span<const DocId> Docs() {
    if (!docs_ok_) {
      docs_ok_ = true;
      size_t tf_offset = 0;
      Status s = DecodeTaggedDocs(list_.BlockBytes(cur_), meta().base,
                                  meta().count, docs_, &tf_offset);
      if (!s.ok()) docs_.clear();  // poison, mirroring Iterator::LoadBlock
      ChargeOnce(1 + tf_offset);
    }
    return docs_;
  }

  size_t& pos() { return pos_; }

  /// Membership probe for d in the current block; d must not exceed
  /// meta().max_doc. Probes are monotone within a block, advancing an
  /// internal cursor by linear (merge) or galloping steps.
  bool Contains(DocId d, bool merge_probe) {
    const auto& m = meta();
    // In the gap before this block. Block 0 may legitimately start AT its
    // base (docid 0, base 0); every later block's docs are strictly > base.
    if (d < m.base || (d == m.base && cur_ != 0)) return false;
    if (cost_ != nullptr) cost_->entries_scanned++;
    if (IsBitmap()) return View().Test(d);
    std::span<const DocId> docs = Docs();
    if (merge_probe) {
      while (pos_ < docs.size() && docs[pos_] < d) ++pos_;
    } else {
      size_t bound = 1;
      while (pos_ + bound < docs.size() && docs[pos_ + bound] < d) {
        bound <<= 1;
      }
      size_t lo = pos_ + bound / 2;
      size_t hi = std::min(pos_ + bound + 1, docs.size());
      pos_ = static_cast<size_t>(
          std::lower_bound(docs.begin() + lo, docs.begin() + hi, d) -
          docs.begin());
    }
    return pos_ < docs.size() && docs[pos_] == d;
  }

 private:
  void ChargeOnce(size_t bytes) {
    if (charged_ || cost_ == nullptr) return;
    charged_ = true;
    cost_->segments_touched++;
    cost_->bytes_touched += bytes;
  }

  const CompressedPostingList& list_;
  CostCounters* cost_;
  size_t cur_ = 0;
  bool tagged_ = false;
  bool is_bitmap_ = false;
  bool view_ok_ = false;
  bool docs_ok_ = false;
  bool charged_ = false;
  BitmapBlockCodec::View view_;
  std::vector<DocId> docs_;
  size_t pos_ = 0;
};

/// The pairwise loop: for each driver block, windows of candidate docids
/// are intersected against the probe side's blocks. Sink sees either
/// whole 64-bit AND words (Word) or individual matches (Doc), always in
/// increasing docid order.
///
/// Array×array windows dispatch to the SIMD kernel family
/// (simd_intersect.h): the overlapping slices of both decoded blocks are
/// handed to SimdIntersect, which picks pairwise-shuffle / wide-probe /
/// SIMD-gallop from the window length ratio and the active dispatch
/// level. Cost parity with the per-value probe loop is kept analytically:
/// the probe side is charged one entries_scanned per driver value at or
/// above the probe block's first possible docid — exactly what
/// PairwiseSide::Contains charged, and independent of the dispatch level,
/// so counters stay bit-identical under CSR_FORCE_SCALAR differentials.
template <typename Sink>
void PairwiseIntersectImpl(const CompressedPostingList& drv,
                           const CompressedPostingList& oth,
                           CostCounters* drv_cost, CostCounters* oth_cost,
                           bool merge_probe, Sink&& sink) {
  PairwiseSide a(drv, drv_cost);
  PairwiseSide b(oth, oth_cost);
  std::vector<DocId> matches;  // kernel scratch, reused across windows
  const size_t nblocks = drv.num_blocks();
  for (size_t db = 0; db < nblocks; ++db) {
    a.MoveTo(db);
    const auto& m = a.meta();
    // Candidates live in [base, max_doc] for the very first block (docid
    // 0 can equal base 0) and (base, max_doc] afterwards.
    uint64_t next_d = static_cast<uint64_t>(m.base) + (db == 0 ? 0 : 1);
    bool drv_block_touched = false;
    while (next_d <= m.max_doc) {
      if (!b.SeekBlock(static_cast<DocId>(next_d))) return;
      const auto& om = b.meta();
      if (om.base > m.max_doc) break;  // no probe docs within this block
      const DocId hi = std::min(m.max_doc, om.max_doc);
      if (a.IsBitmap() && b.IsBitmap()) {
        const BitmapBlockCodec::View& va = a.View();
        const BitmapBlockCodec::View& vb = b.View();
        drv_block_touched = true;
        const size_t na = (static_cast<size_t>(va.range) + 7) / 8;
        const size_t nb = (static_cast<size_t>(vb.range) + 7) / 8;
        uint64_t lo = std::max({next_d, static_cast<uint64_t>(va.first),
                                static_cast<uint64_t>(vb.first)});
        for (uint64_t chunk = lo; chunk <= hi; chunk += 64) {
          uint64_t w = BitmapWindow(va.bits, na, chunk - va.first) &
                       BitmapWindow(vb.bits, nb, chunk - vb.first);
          const uint64_t span = hi - chunk;  // inclusive span minus one
          if (span < 63) w &= (1ull << (span + 1)) - 1;
          if (w != 0) sink.Word(static_cast<DocId>(chunk), w);
        }
        if (oth_cost != nullptr) {
          oth_cost->entries_scanned += (hi - lo) / 64 + 1;
        }
      } else if (b.IsBitmap()) {
        std::span<const DocId> docs = a.Docs();
        drv_block_touched = true;
        size_t& pos = a.pos();
        while (pos < docs.size() && docs[pos] < next_d) ++pos;
        for (; pos < docs.size() && docs[pos] <= hi; ++pos) {
          if (b.Contains(docs[pos], merge_probe)) sink.Doc(docs[pos]);
        }
        if (pos >= docs.size()) break;  // driver block exhausted
        if (docs[pos] > hi) {
          // Gallop straight to the next driver candidate: SeekBlock can
          // then leap candidate-free probe blocks (charged to
          // blocks_skipped) instead of walking them one by one.
          next_d = docs[pos];
          continue;
        }
      } else {
        std::span<const DocId> docs = a.Docs();
        drv_block_touched = true;
        size_t& pos = a.pos();
        while (pos < docs.size() && docs[pos] < next_d) ++pos;
        // Driver window: candidates in [next_d, hi].
        const size_t wend = static_cast<size_t>(
            std::upper_bound(docs.begin() + pos, docs.end(), hi) -
            docs.begin());
        if (wend > pos) {
          // Values below the probe block's first possible docid sit in the
          // inter-block gap; Contains never charged (or decoded) for them.
          // Block 0 may start AT its base, later blocks strictly above it.
          const DocId min_in =
              om.base + (b.current_block() == 0 ? 0 : 1);
          const size_t in_from = static_cast<size_t>(
              std::lower_bound(docs.begin() + pos, docs.begin() + wend,
                               min_in) -
              docs.begin());
          if (in_from < wend) {
            if (oth_cost != nullptr) {
              oth_cost->entries_scanned += wend - in_from;
            }
            std::span<const DocId> bdocs = b.Docs();
            size_t& bpos = b.pos();
            const size_t bstart = static_cast<size_t>(
                std::lower_bound(bdocs.begin() + bpos, bdocs.end(),
                                 docs[in_from]) -
                bdocs.begin());
            const size_t bend = static_cast<size_t>(
                std::upper_bound(bdocs.begin() + bstart, bdocs.end(), hi) -
                bdocs.begin());
            if (bend > bstart) {
              matches.resize(std::min(wend - in_from, bend - bstart));
              const size_t nm = SimdIntersect(
                  docs.data() + in_from, wend - in_from,
                  bdocs.data() + bstart, bend - bstart, matches.data());
              for (size_t k = 0; k < nm; ++k) sink.Doc(matches[k]);
            }
            // All docids <= hi in this probe block are consumed; future
            // probes (same block, later windows) are strictly above hi.
            bpos = bend;
          }
        }
        a.pos() = wend;
        if (wend >= docs.size()) break;  // driver block exhausted
        if (docs[wend] > hi) {
          // Gallop straight to the next driver candidate: SeekBlock can
          // then leap candidate-free probe blocks (charged to
          // blocks_skipped) instead of walking them one by one.
          next_d = docs[wend];
          continue;
        }
      }
      if (hi >= m.max_doc) break;
      next_d = static_cast<uint64_t>(hi) + 1;
    }
    if (!drv_block_touched && drv_cost != nullptr) {
      drv_cost->blocks_skipped++;  // bypassed without decoding
    }
    if (b.exhausted()) return;
  }
}

struct CountSink {
  uint64_t n = 0;
  void Doc(DocId) { ++n; }
  void Word(DocId, uint64_t w) { n += static_cast<uint64_t>(std::popcount(w)); }
};

struct ScanSink {
  const std::function<void(DocId)>* fn;
  uint64_t n = 0;
  void Doc(DocId d) {
    ++n;
    (*fn)(d);
  }
  void Word(DocId first, uint64_t w) {
    while (w != 0) {
      unsigned bit = static_cast<unsigned>(std::countr_zero(w));
      Doc(first + bit);
      w &= w - 1;
    }
  }
};

bool PairwiseMergeProbe(const CompressedPostingList& drv,
                        const CompressedPostingList& oth) {
  return ChooseIntersectStrategy(drv.size(), oth.size(),
                                 drv.has_bitmap_blocks(),
                                 oth.has_bitmap_blocks()) ==
         IntersectStrategy::kMerge;
}

}  // namespace

uint64_t CountPairwiseIntersection(const CompressedPostingList& a,
                                   const CompressedPostingList& b,
                                   CostCounters* cost_a,
                                   CostCounters* cost_b) {
  if (a.empty() || b.empty()) return 0;
  const bool a_drives = a.size() <= b.size();
  const CompressedPostingList& drv = a_drives ? a : b;
  const CompressedPostingList& oth = a_drives ? b : a;
  CountSink sink;
  PairwiseIntersectImpl(drv, oth, a_drives ? cost_a : cost_b,
                        a_drives ? cost_b : cost_a,
                        PairwiseMergeProbe(drv, oth), sink);
  return sink.n;
}

uint64_t ScanPairwiseIntersection(const CompressedPostingList& a,
                                  const CompressedPostingList& b,
                                  CostCounters* cost_a, CostCounters* cost_b,
                                  const std::function<void(DocId)>& on_match) {
  if (a.empty() || b.empty()) return 0;
  const bool a_drives = a.size() <= b.size();
  const CompressedPostingList& drv = a_drives ? a : b;
  const CompressedPostingList& oth = a_drives ? b : a;
  ScanSink sink{&on_match};
  PairwiseIntersectImpl(drv, oth, a_drives ? cost_a : cost_b,
                        a_drives ? cost_b : cost_a,
                        PairwiseMergeProbe(drv, oth), sink);
  return sink.n;
}

uint64_t CountCompressedIntersection(const CompressedPostingList& a,
                                     const CompressedPostingList& b,
                                     CostCounters* cost) {
  return CountPairwiseIntersection(a, b, cost, cost);
}

}  // namespace csr
