#ifndef CSR_INDEX_COST_MODEL_H_
#define CSR_INDEX_COST_MODEL_H_

#include <cstdint>

namespace csr {

/// Counters matching the cost model of Section 3.2.1 of the paper:
///
///   cost(L_i ∩ L_j) = M0 * (N_i^o + N_j^o)
///
/// where M0 is the skip-segment size and N^o counts segments whose ranges
/// overlap a segment of the other list. We instrument the actual execution:
/// `segments_touched` counts segments entered (each costs up to M0 entries),
/// `entries_scanned` counts postings actually visited, and
/// `aggregation_entries` counts postings consumed by γ aggregation
/// operators (cost(γ(P)) = |∩ L_mi|).
struct CostCounters {
  uint64_t entries_scanned = 0;
  uint64_t segments_touched = 0;
  uint64_t skips_taken = 0;
  uint64_t aggregation_entries = 0;
  uint64_t view_tuples_scanned = 0;
  /// Whole blocks bypassed without decoding: block-max WAND pruning plus
  /// compressed SkipTo jumps that never materialize the skipped blocks.
  uint64_t blocks_skipped = 0;
  /// Encoded bytes actually decoded (compressed serving only). The working
  /// -set metric the compression is meant to shrink.
  uint64_t bytes_touched = 0;

  void Reset() { *this = CostCounters(); }

  CostCounters& operator+=(const CostCounters& o) {
    entries_scanned += o.entries_scanned;
    segments_touched += o.segments_touched;
    skips_taken += o.skips_taken;
    aggregation_entries += o.aggregation_entries;
    view_tuples_scanned += o.view_tuples_scanned;
    blocks_skipped += o.blocks_skipped;
    bytes_touched += o.bytes_touched;
    return *this;
  }

  /// The paper's model cost for intersections: M0 * segments touched.
  uint64_t ModelIntersectionCost(uint32_t m0) const {
    return segments_touched * m0;
  }
};

/// How a pairwise intersection steps its lists. Chosen per list-pair (and,
/// in the block-pairwise kernel, per overlapping block window) from the
/// lengths and block representations (ChooseIntersectStrategy below);
/// every strategy visits exactly the same matches — only the probe cost
/// differs — so results are bit-identical by construction.
enum class IntersectStrategy : uint8_t {
  kMerge,       // linear stepping: comparable lengths, gaps of O(1) steps
  kGallop,      // exponential probes: one list much longer than the other
  kBitmapAnd,   // word-wise AND / O(1) bit probes through bitmap blocks
  kWideProbe,   // SIMD wide-probe (v3): rare values tested against 32-wide
                // windows of the frequent list
  kSimdGallop,  // SIMD galloping: block-granular exponential probes plus a
                // vectorized final membership test
};

/// Expected inter-match gap in the longer list ~= length ratio; galloping
/// costs ~2·log2(gap) probes against the merge's gap single-compare
/// steps, which puts the crossover near a ratio of 16.
inline constexpr uint64_t kGallopRatioThreshold = 16;

/// Ratio-driven SIMD kernel selection, after Lemire/Kurz intersectInt
/// (SIMDCompressionAndIntersection): below 50x the 2-way shuffle kernel
/// (or cursor merge/gallop) wins; from 50x the frequent side is cheaper to
/// probe in 32-value windows; past 1000x probing even windows linearly
/// loses to block-granular galloping. The perf_smoke_intersect bench
/// re-measures these crossovers every run (bench_ablation_intersection
/// `intersect_kernels.thresholds`).
inline constexpr uint64_t kWideProbeRatioThreshold = 50;
inline constexpr uint64_t kSimdGallopRatioThreshold = 1000;

inline IntersectStrategy ChooseIntersectStrategy(uint64_t short_len,
                                                 uint64_t long_len,
                                                 bool short_has_bitmaps,
                                                 bool long_has_bitmaps) {
  if (short_has_bitmaps || long_has_bitmaps) {
    return IntersectStrategy::kBitmapAnd;
  }
  if (short_len == 0) return IntersectStrategy::kSimdGallop;
  const uint64_t ratio = long_len / short_len;
  if (ratio >= kSimdGallopRatioThreshold) return IntersectStrategy::kSimdGallop;
  if (ratio >= kWideProbeRatioThreshold) return IntersectStrategy::kWideProbe;
  return ratio >= kGallopRatioThreshold ? IntersectStrategy::kGallop
                                        : IntersectStrategy::kMerge;
}

}  // namespace csr

#endif  // CSR_INDEX_COST_MODEL_H_
