#include "storage/serializer.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/fault.h"

namespace csr {

namespace {
// Container framing: magic(u32) + payload_size(u64) + payload +
// fnv1a(payload)(u64). The explicit payload size makes truncation and
// trailing garbage distinguishable and detectable independently of the
// checksum.
constexpr size_t kHeaderBytes = sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kFooterBytes = sizeof(uint64_t);
}  // namespace

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

void BinaryWriter::PutU32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf_.append(b, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BinaryWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutDouble(double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.append(s);
}

Status BinaryWriter::WriteFile(const std::string& path,
                               uint32_t magic) const {
  if (FaultHit(FaultPoint::kStorageWrite)) {
    return Status::Internal("injected storage write fault: " + path);
  }
  // Crash safety: write to a temp file, fsync it, then atomically rename
  // onto the destination. A crash at any point leaves either the previous
  // file intact or the new one complete — never a torn file at `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + tmp);
  }
  uint64_t payload_size = buf_.size();
  uint64_t checksum = Fnv1a(buf_);
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&payload_size, sizeof(payload_size), 1, f) == 1 &&
            (buf_.empty() ||
             std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size()) &&
            std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

namespace {

/// One open attempt; OpenFile wraps it with the retry loop.
Result<BinaryReader> OpenFileOnce(const std::string& path, uint32_t magic,
                                  const OpenOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  if (FaultHit(FaultPoint::kStorageRead)) {
    std::fclose(f);
    // Transient by definition (a media hiccup, not corrupt bytes):
    // kUnavailable, the one code the retry loop acts on.
    return Status::Unavailable("injected transient storage read fault: " +
                               path);
  }
  std::fseek(f, 0, SEEK_END);
  long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  size_t size = fsize < 0 ? 0 : static_cast<size_t>(fsize);
  if (size < kHeaderBytes) {
    std::fclose(f);
    return Status::DataLoss("truncated header in " + path);
  }
  uint32_t file_magic = 0;
  uint64_t payload_size = 0;
  if (std::fread(&file_magic, sizeof(file_magic), 1, f) != 1 ||
      std::fread(&payload_size, sizeof(payload_size), 1, f) != 1) {
    std::fclose(f);
    return Status::DataLoss("short read: " + path);
  }
  if (file_magic != magic) {
    std::fclose(f);
    return Status::DataLoss("bad magic in " + path);
  }

  size_t available = size - kHeaderBytes;  // payload + footer on disk
  size_t payload;
  if (options.strict) {
    if (payload_size + kFooterBytes < payload_size ||  // overflow guard
        available < payload_size + kFooterBytes) {
      std::fclose(f);
      return Status::DataLoss("truncated file: " + path);
    }
    if (available > payload_size + kFooterBytes) {
      std::fclose(f);
      return Status::DataLoss("trailing garbage after checksum in " + path);
    }
    payload = payload_size;
  } else {
    // Tolerant open: hand back whatever payload prefix survives; the
    // caller's frame checksums decide what is salvageable.
    payload = payload_size < available ? static_cast<size_t>(payload_size)
                                       : available;
  }

  std::string data(payload, '\0');
  bool ok = payload == 0 || std::fread(data.data(), 1, payload, f) == payload;
  uint64_t checksum = 0;
  if (ok && options.strict) {
    ok = std::fread(&checksum, sizeof(checksum), 1, f) == 1;
  }
  std::fclose(f);
  if (!ok) return Status::DataLoss("short read: " + path);
  if (options.strict && Fnv1a(data) != checksum) {
    return Status::DataLoss("checksum mismatch in " + path);
  }
  return BinaryReader(std::move(data));
}

}  // namespace

Result<BinaryReader> BinaryReader::OpenFile(const std::string& path,
                                            uint32_t magic,
                                            OpenOptions options) {
  Result<BinaryReader> r = OpenFileOnce(path, magic, options);
  if (options.retry.max_attempts <= 1) return r;
  if (r.ok()) {
    // Successful protected operation: credit the shared budget.
    RetryBudget::Global().Deposit();
    return r;
  }
  DecorrelatedJitterBackoff backoff(options.retry, /*seed=*/0x0BE77E2ULL);
  for (uint32_t attempt = 1; attempt < options.retry.max_attempts;
       ++attempt) {
    if (r.status().code() != StatusCode::kUnavailable) return r;
    if (!RetryBudget::Global().TryWithdraw()) return r;
    SleepForMillis(backoff.NextDelayMs());
    r = OpenFileOnce(path, magic, options);
    if (r.ok()) {
      RetryBudget::Global().Deposit();
      return r;
    }
  }
  return r;
}

Status BinaryReader::GetU8(uint8_t* v) {
  CSR_RETURN_NOT_OK(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BinaryReader::GetU32(uint32_t* v) {
  CSR_RETURN_NOT_OK(Need(4));
  std::memcpy(v, data_.data() + pos_, 4);
  pos_ += 4;
  return Status::OK();
}

Status BinaryReader::GetU64(uint64_t* v) {
  CSR_RETURN_NOT_OK(Need(8));
  std::memcpy(v, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status BinaryReader::GetVarint(uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63; shift += 7) {
    CSR_RETURN_NOT_OK(Need(1));
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("overlong varint");
}

Status BinaryReader::GetDouble(double* v) {
  CSR_RETURN_NOT_OK(Need(8));
  std::memcpy(v, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status BinaryReader::GetString(std::string* s) {
  uint64_t n;
  CSR_RETURN_NOT_OK(GetVarint(&n));
  CSR_RETURN_NOT_OK(Need(n));
  s->assign(data_, pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::GetBytes(std::string* out, size_t n) {
  CSR_RETURN_NOT_OK(Need(n));
  out->assign(data_, pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace csr
