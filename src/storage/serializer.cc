#include "storage/serializer.h"

#include <cstdio>
#include <cstring>

namespace csr {

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

void BinaryWriter::PutU32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf_.append(b, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BinaryWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutDouble(double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.append(s);
}

Status BinaryWriter::WriteFile(const std::string& path,
                               uint32_t magic) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  uint64_t checksum = Fnv1a(buf_);
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            (buf_.empty() ||
             std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size()) &&
            std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::Internal("short write: " + path);
  return Status::OK();
}

Result<BinaryReader> BinaryReader::OpenFile(const std::string& path,
                                            uint32_t magic) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < static_cast<long>(sizeof(uint32_t) + sizeof(uint64_t))) {
    std::fclose(f);
    return Status::InvalidArgument("file too small: " + path);
  }
  uint32_t file_magic = 0;
  if (std::fread(&file_magic, sizeof(file_magic), 1, f) != 1) {
    std::fclose(f);
    return Status::Internal("short read: " + path);
  }
  if (file_magic != magic) {
    std::fclose(f);
    return Status::InvalidArgument("bad magic in " + path);
  }
  size_t payload = static_cast<size_t>(size) - sizeof(uint32_t) -
                   sizeof(uint64_t);
  std::string data(payload, '\0');
  uint64_t checksum = 0;
  bool ok = (payload == 0 ||
             std::fread(data.data(), 1, payload, f) == payload) &&
            std::fread(&checksum, sizeof(checksum), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::Internal("short read: " + path);
  if (Fnv1a(data) != checksum) {
    return Status::InvalidArgument("checksum mismatch in " + path);
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::GetU8(uint8_t* v) {
  CSR_RETURN_NOT_OK(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BinaryReader::GetU32(uint32_t* v) {
  CSR_RETURN_NOT_OK(Need(4));
  std::memcpy(v, data_.data() + pos_, 4);
  pos_ += 4;
  return Status::OK();
}

Status BinaryReader::GetU64(uint64_t* v) {
  CSR_RETURN_NOT_OK(Need(8));
  std::memcpy(v, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status BinaryReader::GetVarint(uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63; shift += 7) {
    CSR_RETURN_NOT_OK(Need(1));
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("overlong varint");
}

Status BinaryReader::GetDouble(double* v) {
  CSR_RETURN_NOT_OK(Need(8));
  std::memcpy(v, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status BinaryReader::GetString(std::string* s) {
  uint64_t n;
  CSR_RETURN_NOT_OK(GetVarint(&n));
  CSR_RETURN_NOT_OK(Need(n));
  s->assign(data_, pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace csr
