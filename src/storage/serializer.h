#ifndef CSR_STORAGE_SERIALIZER_H_
#define CSR_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace csr {

/// Append-only binary writer with varint/fixed primitives. Buffers in
/// memory; Flush writes the buffer to a file prefixed by a magic tag and
/// suffixed by a FNV-1a checksum, so corrupt or foreign files are rejected
/// at load time rather than silently misread.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);  // varint length + bytes

  template <typename T>
  void PutVarintVector(const std::vector<T>& v) {
    PutVarint(v.size());
    for (const T& x : v) PutVarint(static_cast<uint64_t>(x));
  }

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Writes magic + buffer + checksum to `path`. Returns Internal on I/O
  /// failure.
  Status WriteFile(const std::string& path, uint32_t magic) const;

 private:
  std::string buf_;
};

/// Sequential reader over a loaded buffer. All getters return OutOfRange
/// on truncation; callers are expected to CSR_RETURN_NOT_OK each step.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Loads `path`, verifies magic and checksum.
  static Result<BinaryReader> OpenFile(const std::string& path,
                                       uint32_t magic);

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetVarint(uint64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);

  template <typename T>
  Status GetVarintVector(std::vector<T>* v) {
    uint64_t n;
    CSR_RETURN_NOT_OK(GetVarint(&n));
    v->clear();
    v->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t x;
      CSR_RETURN_NOT_OK(GetVarint(&x));
      v->push_back(static_cast<T>(x));
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::OutOfRange("truncated input");
    }
    return Status::OK();
  }

  std::string data_;
  size_t pos_ = 0;
};

/// FNV-1a over a byte range; the integrity check used by WriteFile.
uint64_t Fnv1a(std::string_view data);

}  // namespace csr

#endif  // CSR_STORAGE_SERIALIZER_H_
