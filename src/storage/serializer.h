#ifndef CSR_STORAGE_SERIALIZER_H_
#define CSR_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/retry.h"
#include "util/types.h"

namespace csr {

/// Append-only binary writer with varint/fixed primitives. Buffers in
/// memory; WriteFile persists the buffer in a self-describing container —
/// magic tag, explicit payload length, payload, FNV-1a checksum — so
/// corrupt, truncated, or garbage-extended files are rejected at load time
/// rather than silently misread.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);  // varint length + bytes
  void PutRaw(std::string_view bytes) { buf_.append(bytes); }

  template <typename T>
  void PutVarintVector(const std::vector<T>& v) {
    PutVarint(v.size());
    for (const T& x : v) PutVarint(static_cast<uint64_t>(x));
  }

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Writes magic + payload length + buffer + checksum to `path`,
  /// crash-safely: the bytes land in `path + ".tmp"` first, are fsync'd,
  /// and are atomically renamed onto `path`, so a crash mid-write never
  /// leaves a torn file at the final path — either the old file survives
  /// intact or the new one is complete. Returns Internal on I/O failure
  /// (the destination is untouched in that case).
  Status WriteFile(const std::string& path, uint32_t magic) const;

 private:
  std::string buf_;
};

/// How OpenFile treats files that fail integrity checks. The strict
/// default is right for files whose loader has no recovery path; loaders
/// that can salvage partial content (per-view framed files with their own
/// frame checksums) open tolerantly and self-verify each frame.
struct OpenOptions {
  /// Verify the whole-file FNV-1a checksum and that the file length
  /// matches the stored payload length exactly (no truncation, no trailing
  /// garbage). Violations are kDataLoss.
  bool strict = true;

  /// Retry policy for *transient* read failures (kUnavailable — e.g. the
  /// injected kStorageRead fault). The default max_attempts of 1 disables
  /// retries, keeping one-fault = one-failure semantics for direct
  /// callers; the snapshot load paths opt in. Retries draw on the
  /// process-wide RetryBudget, and integrity failures (kDataLoss) are
  /// never retried — rereading corrupt bytes cannot help.
  RetryPolicy retry{/*max_attempts=*/1, /*base_ms=*/0.05, /*cap_ms=*/1.0};
};

/// Sequential reader over a loaded buffer. All getters return OutOfRange
/// on truncation; callers are expected to CSR_RETURN_NOT_OK each step.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Loads `path` and verifies its container framing. With strict options
  /// (default), magic/length/checksum violations return kDataLoss; with
  /// tolerant options the available payload prefix is returned and frame-
  /// level checksums are the caller's responsibility. A missing file is
  /// kNotFound either way; a foreign or corrupt magic is always rejected.
  static Result<BinaryReader> OpenFile(const std::string& path,
                                       uint32_t magic,
                                       OpenOptions options = {});

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetVarint(uint64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);

  /// Reads `n` raw bytes (frame extraction for per-view framing).
  Status GetBytes(std::string* out, size_t n);

  template <typename T>
  Status GetVarintVector(std::vector<T>* v) {
    uint64_t n;
    CSR_RETURN_NOT_OK(GetVarint(&n));
    v->clear();
    v->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t x;
      CSR_RETURN_NOT_OK(GetVarint(&x));
      v->push_back(static_cast<T>(x));
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) {
    // Overflow-safe: pos_ <= data_.size() is an invariant, so the
    // subtraction cannot wrap even when a corrupt length is huge.
    if (n > data_.size() - pos_) {
      return Status::OutOfRange("truncated input");
    }
    return Status::OK();
  }

  std::string data_;
  size_t pos_ = 0;
};

/// FNV-1a over a byte range; the integrity check used by WriteFile.
uint64_t Fnv1a(std::string_view data);

}  // namespace csr

#endif  // CSR_STORAGE_SERIALIZER_H_
