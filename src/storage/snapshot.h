#ifndef CSR_STORAGE_SNAPSHOT_H_
#define CSR_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "corpus/generator.h"
#include "engine/engine.h"
#include "storage/serializer.h"
#include "views/view_catalog.h"

namespace csr {

/// On-disk persistence for the engine's expensive artifacts. A snapshot
/// directory holds:
///
///   corpus.csr   ontology + documents + generator config
///   views.csr    tracked keywords + every materialized view (defs + rows)
///
/// Inverted indexes are rebuilt from the corpus at load time (they are a
/// deterministic, fast function of it); view selection + materialization —
/// the hours-long phase at paper scale — is what the snapshot avoids.
/// All files are checksummed; corrupt or mismatched files fail loudly.

Status SaveCorpus(const Corpus& corpus, const std::string& path);
Result<Corpus> LoadCorpus(const std::string& path);

/// Serializes the catalog (definitions, parameter options, and all rows)
/// plus the tracked-keyword table it is aligned with.
Status SaveViews(const ViewCatalog& catalog, const TrackedKeywords& tracked,
                 const std::string& path);

struct LoadedViews {
  ViewCatalog catalog;
  std::vector<TermId> tracked_terms;
};
Result<LoadedViews> LoadViews(const std::string& path);

/// Saves corpus + views under `dir` (created by the caller).
Status SaveEngineSnapshot(const ContextSearchEngine& engine,
                          const std::string& dir);

/// Rebuilds an engine from a snapshot: loads the corpus, re-indexes,
/// installs the persisted views. Fails with FailedPrecondition if the
/// snapshot's tracked keywords do not match the rebuilt engine's (e.g. the
/// EngineConfig changed since the snapshot was taken).
Result<std::unique_ptr<ContextSearchEngine>> LoadEngineSnapshot(
    const std::string& dir, const EngineConfig& config);

}  // namespace csr

#endif  // CSR_STORAGE_SNAPSHOT_H_
