#ifndef CSR_STORAGE_SNAPSHOT_H_
#define CSR_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "corpus/generator.h"
#include "engine/engine.h"
#include "storage/serializer.h"
#include "views/view_catalog.h"

namespace csr {

/// On-disk persistence for the engine's expensive artifacts. A snapshot
/// directory holds:
///
///   corpus.csr     ontology + documents + generator config
///   views.csr      tracked keywords + every materialized view (defs + rows)
///   postings.csr   both compressed inverted indexes, raw encoded bytes
///   MANIFEST.csr   versioned inventory of the snapshot's files
///
/// postings.csr serializes the block-compressed postings verbatim (no
/// decode-reencode): the per-list block metadata plus the raw FOR/varint
/// block bytes. Loading installs them directly via
/// CompressedPostingList::FromParts + InvertedIndex::FromCompressedParts.
/// When it is absent or unreadable, indexes are rebuilt from the corpus
/// (they are a deterministic function of it), so an old or damaged
/// postings file degrades load time, never correctness. View selection +
/// materialization — the hours-long phase at paper scale — is what the
/// snapshot exists to avoid.
///
/// Failure model: every file is written to a temp path, fsync'd, and
/// atomically renamed, so crashes never leave torn files at final paths.
/// corpus.csr is all-or-nothing — any corruption is kDataLoss, because a
/// wrong corpus silently changes every answer. views.csr is per-view
/// framed with its own frame checksums: a corrupt view is *quarantined*
/// (dropped, with the reason recorded in the catalog) while the rest of
/// the catalog loads; queries whose context only that view covered degrade
/// to the straightforward plan and are flagged degraded.
///
/// Observability state is deliberately NOT part of a snapshot. Registry
/// counters and the legacy telemetry structs (DegradationStats, cache and
/// executor counters) are cumulative over a *process lifetime*, not
/// properties of the index artifact: persisting them would double-count a
/// prior process's traffic after restore and make fresh-vs-restored
/// engines report different baselines for identical serving state. A
/// loaded engine therefore starts with zeroed metrics, the same as a
/// freshly built one.

Status SaveCorpus(const Corpus& corpus, const std::string& path);
Result<Corpus> LoadCorpus(const std::string& path);

/// Serializes the catalog (definitions, parameter options, and all rows)
/// plus the tracked-keyword table it is aligned with. Each view lands in
/// its own checksummed frame; frame lengths and definitions live in a
/// checksummed directory so a corrupt view body never desynchronizes its
/// neighbours. `base_docs` records how many documents the views aggregate
/// over (the engine's base segment); 0 means "not recorded" and disables
/// the torn-save cross-check at load.
Status SaveViews(const ViewCatalog& catalog, const TrackedKeywords& tracked,
                 const std::string& path, uint64_t base_docs = 0);

struct LoadedViews {
  /// Successfully decoded views; quarantined views (and why they were
  /// dropped) are recorded in catalog.quarantined().
  ViewCatalog catalog;
  std::vector<TermId> tracked_terms;
  /// Base doc count the views aggregate over; 0 when the file predates v3
  /// (or the saver did not record it).
  uint64_t base_docs = 0;
};

/// Loads what is salvageable from `path`. Corruption confined to view
/// frames quarantines exactly the affected views; corruption in the header
/// (tracked keywords, frame directory) is kDataLoss — without the
/// directory nothing is attributable.
Result<LoadedViews> LoadViews(const std::string& path);

/// Serializes both compressed indexes (content + predicate) of `engine`
/// into `path`, block bytes verbatim. FailedPrecondition when the engine
/// serves uncompressed postings (nothing compressed to persist).
Status SavePostings(const ContextSearchEngine& engine,
                    const std::string& path);

struct LoadedPostings {
  InvertedIndex content_index;
  InvertedIndex predicate_index;
};

/// Loads both indexes from `path`, validating checksums, block metadata
/// invariants, and that the indexes cover exactly `expected_docs`
/// documents. Any mismatch is a typed error (callers fall back to
/// rebuilding from the corpus).
Result<LoadedPostings> LoadPostings(const std::string& path,
                                    uint64_t expected_docs);

/// Serializes one sealed, block-compressed segment (header + years + both
/// compressed indexes, block bytes verbatim) into `path`.
/// FailedPrecondition for unsealed or uncompressed segments — the write
/// buffer is never persisted (it is rebuilt from the corpus tail), and
/// uncompressed configurations rebuild segments from the corpus at load.
Status SaveSegment(const IndexSegment& segment, const std::string& path);

/// Loads one sealed segment, validating checksums and that the indexes,
/// years, and header agree on the document count. Any mismatch is a typed
/// error; the snapshot loader quarantines the segment and rebuilds its
/// docid range from the corpus (which is ground truth).
Result<IndexSegment> LoadSegment(const std::string& path);

/// Saves corpus + views + compressed postings (when the engine serves
/// them) + manifest under `dir` (created by the caller).
/// The manifest is written last, so a crash mid-save is detectable as a
/// manifest/file mismatch rather than silently served.
Status SaveEngineSnapshot(const ContextSearchEngine& engine,
                          const std::string& dir);

/// Rebuilds an engine from a snapshot: verifies the manifest (when
/// present), loads the corpus, re-indexes, installs the persisted views.
/// Views quarantined during load are surfaced through the engine's
/// degradation telemetry. Fails with FailedPrecondition if the snapshot's
/// tracked keywords do not match the rebuilt engine's (e.g. the
/// EngineConfig changed since the snapshot was taken), kDataLoss if a
/// manifest-listed file is missing or the corpus is corrupt.
Result<std::unique_ptr<ContextSearchEngine>> LoadEngineSnapshot(
    const std::string& dir, const EngineConfig& config);

}  // namespace csr

#endif  // CSR_STORAGE_SNAPSHOT_H_
