#include "storage/snapshot.h"

#include <cstdio>
#include <span>
#include <utility>

#include "util/fault.h"

namespace csr {

namespace {

constexpr uint32_t kCorpusMagic = 0x43535243;    // "CSRC"
constexpr uint32_t kViewsMagic = 0x43535256;     // "CSRV"
constexpr uint32_t kPostingsMagic = 0x43535250;  // "CSRP"
constexpr uint32_t kManifestMagic = 0x4353524D;  // "CSRM"
constexpr uint32_t kCorpusVersion = 1;
// v2: per-view framing + directory. v3: the header records the base doc
// count the views aggregate over, so a torn segmented save (views from a
// newer save paired with an older/absent manifest, or vice versa) is
// detected instead of silently mis-ranking; v2 files load with the base
// unknown (no check possible — they predate segmented snapshots).
constexpr uint32_t kViewsVersion = 3;
constexpr uint32_t kViewsMinVersion = 2;
// v2: blocks may carry the bitmap container tag (BlockCodec::kBitmap).
// The framing is unchanged — block bytes are persisted verbatim, tag
// included — so v1 snapshots load as-is; they simply predate bitmap
// blocks. FromParts rejects unknown tags with InvalidArgument, which the
// loader surfaces as a corrupt file (rebuild fallback).
constexpr uint32_t kPostingsVersion = 2;
constexpr uint32_t kPostingsMinVersion = 1;
constexpr uint32_t kSegmentMagic = 0x43535253;  // "CSRS"
constexpr uint32_t kSegmentVersion = 1;
// Manifest v2 / format v3: segmented snapshots. After the version fields
// the manifest carries the collection layout (base_docs, total_docs, the
// sealed-segment inventory) before the file list. v1 manifests — whole
// collection in the base, no segments — load unchanged.
constexpr uint32_t kManifestVersion = 2;
constexpr uint32_t kManifestMinVersion = 1;
constexpr uint32_t kSnapshotFormatVersion = 3;
constexpr uint32_t kSnapshotFormatMinVersion = 2;

/// Open options for the snapshot load paths: transient read faults
/// (kUnavailable) are retried within the process-wide RetryBudget before
/// the loader gives up and falls back to its rebuild/quarantine path.
/// Integrity failures are not retried (OpenOptions contract).
OpenOptions SnapshotOpen(bool strict = true) {
  OpenOptions o;
  o.strict = strict;
  o.retry = RetryPolicy{/*max_attempts=*/3, /*base_ms=*/0.05,
                        /*cap_ms=*/1.0};
  return o;
}

void PutConfig(BinaryWriter& w, const CorpusConfig& c) {
  w.PutU64(c.seed);
  w.PutU32(c.num_docs);
  w.PutU32(c.vocab_size);
  w.PutVarintVector(c.ontology_fanouts);
  w.PutDouble(c.leaf_zipf_exponent);
  w.PutU32(c.max_concepts_per_doc);
  w.PutU32(c.title_len_mean);
  w.PutU32(c.abstract_len_mean);
  w.PutDouble(c.topical_prob);
  w.PutU32(c.topical_window);
  w.PutDouble(c.background_zipf_exponent);
  w.PutDouble(c.topical_zipf_exponent);
  w.PutVarint(c.year_min);
  w.PutVarint(c.year_max);
}

Status GetConfig(BinaryReader& r, CorpusConfig* c) {
  CSR_RETURN_NOT_OK(r.GetU64(&c->seed));
  CSR_RETURN_NOT_OK(r.GetU32(&c->num_docs));
  CSR_RETURN_NOT_OK(r.GetU32(&c->vocab_size));
  CSR_RETURN_NOT_OK(r.GetVarintVector(&c->ontology_fanouts));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->leaf_zipf_exponent));
  CSR_RETURN_NOT_OK(r.GetU32(&c->max_concepts_per_doc));
  CSR_RETURN_NOT_OK(r.GetU32(&c->title_len_mean));
  CSR_RETURN_NOT_OK(r.GetU32(&c->abstract_len_mean));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->topical_prob));
  CSR_RETURN_NOT_OK(r.GetU32(&c->topical_window));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->background_zipf_exponent));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->topical_zipf_exponent));
  uint64_t ymin, ymax;
  CSR_RETURN_NOT_OK(r.GetVarint(&ymin));
  CSR_RETURN_NOT_OK(r.GetVarint(&ymax));
  c->year_min = static_cast<uint16_t>(ymin);
  c->year_max = static_cast<uint16_t>(ymax);
  return Status::OK();
}

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  BinaryWriter w;
  w.PutU32(kCorpusVersion);
  PutConfig(w, corpus.config);

  // Ontology: ids are assigned in construction order, so parents always
  // precede children and the (parent, name) arrays rebuild it exactly.
  w.PutVarint(corpus.ontology.size());
  for (TermId t = 0; t < corpus.ontology.size(); ++t) {
    TermId p = corpus.ontology.parent(t);
    w.PutVarint(p == kInvalidTermId ? 0 : static_cast<uint64_t>(p) + 1);
    w.PutString(corpus.ontology.name(t));
  }

  w.PutVarint(corpus.docs.size());
  for (const Document& d : corpus.docs) {
    w.PutVarint(d.year);
    w.PutVarintVector(d.title);
    w.PutVarintVector(d.abstract_text);
    w.PutVarintVector(d.annotations);
  }
  return w.WriteFile(path, kCorpusMagic);
}

Result<Corpus> LoadCorpus(const std::string& path) {
  CSR_ASSIGN_OR_RETURN(
      BinaryReader r, BinaryReader::OpenFile(path, kCorpusMagic,
                                             SnapshotOpen()));
  uint32_t version;
  CSR_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kCorpusVersion) {
    return Status::InvalidArgument("unsupported corpus version");
  }
  Corpus corpus;
  CSR_RETURN_NOT_OK(GetConfig(r, &corpus.config));

  uint64_t num_concepts;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_concepts));
  for (uint64_t t = 0; t < num_concepts; ++t) {
    uint64_t parent_plus1;
    std::string name;
    CSR_RETURN_NOT_OK(r.GetVarint(&parent_plus1));
    CSR_RETURN_NOT_OK(r.GetString(&name));
    if (parent_plus1 == 0) {
      corpus.ontology.AddRoot(std::move(name));
    } else {
      TermId parent = static_cast<TermId>(parent_plus1 - 1);
      if (parent >= t) {
        return Status::InvalidArgument("corrupt ontology: child before parent");
      }
      CSR_RETURN_NOT_OK(
          corpus.ontology.AddChild(parent, std::move(name)).status());
    }
  }

  uint64_t num_docs;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_docs));
  corpus.docs.reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    Document d;
    d.id = static_cast<DocId>(i);
    uint64_t year;
    CSR_RETURN_NOT_OK(r.GetVarint(&year));
    d.year = static_cast<uint16_t>(year);
    CSR_RETURN_NOT_OK(r.GetVarintVector(&d.title));
    CSR_RETURN_NOT_OK(r.GetVarintVector(&d.abstract_text));
    CSR_RETURN_NOT_OK(r.GetVarintVector(&d.annotations));
    corpus.docs.push_back(std::move(d));
  }
  return corpus;
}

/// Accesses MaterializedView internals for persistence (friend).
class ViewSerializer {
 public:
  static void Save(const MaterializedView& v, BinaryWriter& w) {
    w.PutVarintVector(v.def_.keyword_columns);
    w.PutU8(v.options_.track_df);
    w.PutU8(v.options_.track_tc);
    w.PutVarint(v.options_.year_bucket_size);
    w.PutU32(v.num_tracked_);
    w.PutVarint(v.NumTuples());
    auto put_row = [&](const MaterializedView::TupleKey& key, uint64_t count,
                       uint64_t sum_len, std::span<const uint32_t> df,
                       std::span<const uint32_t> tc) {
      w.PutVarint(key.bucket);
      w.PutVarintVector(key.sig.raw_words());
      w.PutVarint(count);
      w.PutVarint(sum_len);
      w.PutVarint(df.size());
      for (uint32_t x : df) w.PutVarint(x);
      w.PutVarint(tc.size());
      for (uint32_t x : tc) w.PutVarint(x);
    };
    if (v.compacted_) {
      const MaterializedView::FlatRows& f = v.flat_;
      size_t stride = v.num_tracked_;
      for (size_t r = 0; r < f.keys.size(); ++r) {
        std::span<const uint32_t> df;
        std::span<const uint32_t> tc;
        if (!f.df.empty()) df = {f.df.data() + r * stride, stride};
        if (!f.tc.empty()) tc = {f.tc.data() + r * stride, stride};
        put_row(f.keys[r], f.counts[r], f.sum_lens[r], df, tc);
      }
    } else {
      for (const auto& [key, row] : v.rows_) {
        put_row(key, row.count, row.sum_len, row.df, row.tc);
      }
    }
  }

  static Result<MaterializedView> Load(BinaryReader& r) {
    ViewDefinition def;
    CSR_RETURN_NOT_OK(r.GetVarintVector(&def.keyword_columns));
    uint8_t track_df, track_tc;
    CSR_RETURN_NOT_OK(r.GetU8(&track_df));
    CSR_RETURN_NOT_OK(r.GetU8(&track_tc));
    uint64_t bucket_size;
    CSR_RETURN_NOT_OK(r.GetVarint(&bucket_size));
    uint32_t num_tracked;
    CSR_RETURN_NOT_OK(r.GetU32(&num_tracked));
    ViewParamOptions options{track_df != 0, track_tc != 0,
                             static_cast<uint16_t>(bucket_size)};
    MaterializedView v(std::move(def), options, num_tracked);

    uint64_t num_rows;
    CSR_RETURN_NOT_OK(r.GetVarint(&num_rows));
    size_t expected_words =
        (v.def_.keyword_columns.size() + 63) / 64;
    for (uint64_t i = 0; i < num_rows; ++i) {
      uint64_t bucket;
      CSR_RETURN_NOT_OK(r.GetVarint(&bucket));
      std::vector<uint64_t> words;
      CSR_RETURN_NOT_OK(r.GetVarintVector(&words));
      if (words.size() != expected_words) {
        return Status::InvalidArgument("corrupt view row signature");
      }
      MaterializedView::Row row;
      CSR_RETURN_NOT_OK(r.GetVarint(&row.count));
      CSR_RETURN_NOT_OK(r.GetVarint(&row.sum_len));
      CSR_RETURN_NOT_OK(r.GetVarintVector(&row.df));
      CSR_RETURN_NOT_OK(r.GetVarintVector(&row.tc));
      v.rows_.emplace(
          MaterializedView::TupleKey{
              BitSignature::FromWords(std::move(words)),
              static_cast<uint16_t>(bucket)},
          std::move(row));
    }
    return v;
  }
};

// views.csr v2 payload layout (the outer container is opened *tolerantly*;
// integrity lives in the header and frame checksums below, so corruption in
// one view frame cannot take down the whole catalog):
//
//   varint  header_len
//   u64     fnv1a(header)
//   header:
//     u32     views format version
//     varint* tracked keyword terms
//     varint  num_views
//     per view (the frame directory):
//       varint  frame_len
//       u64     fnv1a(frame)
//       varint* keyword_columns     (def, for quarantine attribution)
//   view frames, concatenated (frame i decoded by ViewSerializer::Load)
namespace {

struct ViewFrameEntry {
  uint64_t frame_len = 0;
  uint64_t frame_sum = 0;
  TermIdSet keyword_columns;
};

}  // namespace

Status SaveViews(const ViewCatalog& catalog, const TrackedKeywords& tracked,
                 const std::string& path, uint64_t base_docs) {
  std::vector<std::string> frames;
  frames.reserve(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    BinaryWriter fw;
    ViewSerializer::Save(catalog.view(i), fw);
    frames.push_back(fw.buffer());
  }

  BinaryWriter header;
  header.PutU32(kViewsVersion);
  header.PutVarint(base_docs);
  header.PutVarintVector(tracked.terms());
  header.PutVarint(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    header.PutVarint(frames[i].size());
    header.PutU64(Fnv1a(frames[i]));
    header.PutVarintVector(catalog.view(i).def().keyword_columns);
  }

  BinaryWriter w;
  w.PutVarint(header.size());
  w.PutU64(Fnv1a(header.buffer()));
  w.PutRaw(header.buffer());
  for (const std::string& f : frames) w.PutRaw(f);
  return w.WriteFile(path, kViewsMagic);
}

Result<LoadedViews> LoadViews(const std::string& path) {
  // Tolerant open: the whole-file checksum is advisory here; the header
  // and per-frame checksums below are authoritative, which is what lets a
  // single corrupt view be dropped instead of failing the load wholesale.
  CSR_ASSIGN_OR_RETURN(
      BinaryReader r,
      BinaryReader::OpenFile(path, kViewsMagic,
                             SnapshotOpen(/*strict=*/false)));

  uint64_t header_len = 0;
  uint64_t header_sum = 0;
  std::string header_bytes;
  if (!r.GetVarint(&header_len).ok() || !r.GetU64(&header_sum).ok() ||
      !r.GetBytes(&header_bytes, header_len).ok()) {
    return Status::DataLoss("views header truncated in " + path);
  }
  if (Fnv1a(header_bytes) != header_sum) {
    return Status::DataLoss("views header checksum mismatch in " + path);
  }

  BinaryReader h(std::move(header_bytes));
  uint32_t version = 0;
  CSR_RETURN_NOT_OK(h.GetU32(&version));
  if (version < kViewsMinVersion || version > kViewsVersion) {
    return Status::InvalidArgument("unsupported views version " +
                                   std::to_string(version) + " in " + path);
  }
  LoadedViews out;
  if (version >= 3) CSR_RETURN_NOT_OK(h.GetVarint(&out.base_docs));
  CSR_RETURN_NOT_OK(h.GetVarintVector(&out.tracked_terms));
  uint64_t num_views = 0;
  CSR_RETURN_NOT_OK(h.GetVarint(&num_views));
  std::vector<ViewFrameEntry> directory(num_views);
  for (uint64_t i = 0; i < num_views; ++i) {
    CSR_RETURN_NOT_OK(h.GetVarint(&directory[i].frame_len));
    CSR_RETURN_NOT_OK(h.GetU64(&directory[i].frame_sum));
    CSR_RETURN_NOT_OK(h.GetVarintVector(&directory[i].keyword_columns));
  }

  for (uint64_t i = 0; i < num_views; ++i) {
    ViewFrameEntry& e = directory[i];
    auto quarantine = [&](std::string reason) {
      out.catalog.RecordQuarantine(
          QuarantinedView{e.keyword_columns, std::move(reason)});
    };

    std::string frame;
    if (!r.GetBytes(&frame, e.frame_len).ok()) {
      // The file ends mid-frame: this frame and everything after it are
      // gone, but views already decoded stay usable.
      for (uint64_t j = i; j < num_views; ++j) {
        out.catalog.RecordQuarantine(QuarantinedView{
            directory[j].keyword_columns, "view frame truncated"});
      }
      break;
    }
    if (FaultHit(FaultPoint::kViewDecode)) {
      quarantine("injected view decode fault");
      continue;
    }
    if (Fnv1a(frame) != e.frame_sum) {
      quarantine("view frame checksum mismatch");
      continue;
    }
    BinaryReader fr(std::move(frame));
    Result<MaterializedView> v = ViewSerializer::Load(fr);
    if (!v.ok()) {
      quarantine("view frame decode failed: " + v.status().ToString());
      continue;
    }
    if (!fr.AtEnd()) {
      quarantine("trailing bytes in view frame");
      continue;
    }
    if (v->def().keyword_columns != e.keyword_columns) {
      quarantine("view definition does not match frame directory");
      continue;
    }
    out.catalog.Add(std::move(*v));
  }
  return out;
}

namespace {

/// One compressed index: collection stats, then per term the block
/// metadata and the raw encoded block bytes, verbatim.
void PutIndex(BinaryWriter& w, const InvertedIndex& index) {
  w.PutVarint(index.total_length());
  w.PutVarint(index.doc_lengths().size());
  for (uint32_t len : index.doc_lengths()) w.PutVarint(len);
  w.PutVarint(index.num_terms());
  for (TermId t = 0; t < index.num_terms(); ++t) {
    const CompressedPostingList* l = index.clist(t);
    if (l == nullptr) {
      w.PutVarint(0);
      continue;
    }
    w.PutVarint(l->size());
    w.PutVarint(l->block_size());
    w.PutVarint(l->total_tf());
    w.PutVarint(l->max_tf());
    w.PutVarint(l->num_blocks());
    for (const CompressedPostingList::BlockMeta& b : l->blocks()) {
      w.PutVarint(b.max_doc);
      w.PutVarint(b.base);
      w.PutVarint(b.offset);
      w.PutVarint(b.count);
      w.PutVarint(b.max_tf);
    }
    w.PutString(l->raw_bytes());
  }
}

Result<InvertedIndex> GetIndex(BinaryReader& r, uint64_t expected_docs) {
  uint64_t total_length = 0;
  CSR_RETURN_NOT_OK(r.GetVarint(&total_length));
  uint64_t num_lengths = 0;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_lengths));
  if (num_lengths != expected_docs) {
    return Status::InvalidArgument(
        "postings snapshot covers " + std::to_string(num_lengths) +
        " documents; corpus has " + std::to_string(expected_docs));
  }
  std::vector<uint32_t> doc_lengths;
  doc_lengths.reserve(num_lengths);
  for (uint64_t i = 0; i < num_lengths; ++i) {
    uint64_t len = 0;
    CSR_RETURN_NOT_OK(r.GetVarint(&len));
    doc_lengths.push_back(static_cast<uint32_t>(len));
  }

  uint64_t num_terms = 0;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_terms));
  std::vector<CompressedPostingList> lists;
  lists.reserve(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    uint64_t num_postings = 0;
    CSR_RETURN_NOT_OK(r.GetVarint(&num_postings));
    if (num_postings == 0) {
      lists.emplace_back();
      continue;
    }
    CompressedPostingList::Parts parts;
    parts.num_postings = num_postings;
    uint64_t block_size = 0, total_tf = 0, max_tf = 0, num_blocks = 0;
    CSR_RETURN_NOT_OK(r.GetVarint(&block_size));
    CSR_RETURN_NOT_OK(r.GetVarint(&total_tf));
    CSR_RETURN_NOT_OK(r.GetVarint(&max_tf));
    CSR_RETURN_NOT_OK(r.GetVarint(&num_blocks));
    parts.block_size = static_cast<uint32_t>(block_size);
    parts.total_tf = total_tf;
    parts.max_tf = static_cast<uint32_t>(max_tf);
    parts.blocks.reserve(num_blocks);
    for (uint64_t b = 0; b < num_blocks; ++b) {
      uint64_t max_doc = 0, base = 0, offset = 0, count = 0, bmax_tf = 0;
      CSR_RETURN_NOT_OK(r.GetVarint(&max_doc));
      CSR_RETURN_NOT_OK(r.GetVarint(&base));
      CSR_RETURN_NOT_OK(r.GetVarint(&offset));
      CSR_RETURN_NOT_OK(r.GetVarint(&count));
      CSR_RETURN_NOT_OK(r.GetVarint(&bmax_tf));
      parts.blocks.push_back(CompressedPostingList::BlockMeta{
          static_cast<DocId>(max_doc), static_cast<DocId>(base),
          static_cast<uint32_t>(offset), static_cast<uint32_t>(count),
          static_cast<uint32_t>(bmax_tf)});
    }
    CSR_RETURN_NOT_OK(r.GetString(&parts.bytes));
    // FromParts re-validates the metadata invariants; corrupt metadata is
    // a typed error, never a malformed list.
    CSR_ASSIGN_OR_RETURN(CompressedPostingList list,
                         CompressedPostingList::FromParts(std::move(parts)));
    if (!list.blocks().empty() &&
        list.blocks().back().max_doc >= expected_docs) {
      return Status::InvalidArgument(
          "postings snapshot references docids beyond the corpus");
    }
    lists.push_back(std::move(list));
  }
  return InvertedIndex::FromCompressedParts(std::move(lists),
                                            std::move(doc_lengths),
                                            total_length);
}

}  // namespace

Status SavePostings(const ContextSearchEngine& engine,
                    const std::string& path) {
  if (!engine.content_index().compressed() ||
      !engine.predicate_index().compressed()) {
    return Status::FailedPrecondition(
        "engine serves uncompressed postings; nothing compressed to persist");
  }
  BinaryWriter w;
  w.PutU32(kPostingsVersion);
  // The base indexes may cover only a prefix of the corpus (segmented
  // engine); sealed extras are persisted in their own seg-<id>.csr files.
  w.PutVarint(engine.content_index().num_docs());
  PutIndex(w, engine.content_index());
  PutIndex(w, engine.predicate_index());
  return w.WriteFile(path, kPostingsMagic);
}

Result<LoadedPostings> LoadPostings(const std::string& path,
                                    uint64_t expected_docs) {
  // Strict open: the whole-file checksum is authoritative here. Unlike
  // views there is no per-list salvage — a damaged postings file is simply
  // ignored in favour of rebuilding from the corpus, so partial recovery
  // would buy nothing.
  CSR_ASSIGN_OR_RETURN(
      BinaryReader r, BinaryReader::OpenFile(path, kPostingsMagic,
                                             SnapshotOpen()));
  uint32_t version = 0;
  CSR_RETURN_NOT_OK(r.GetU32(&version));
  if (version < kPostingsMinVersion || version > kPostingsVersion) {
    return Status::InvalidArgument("unsupported postings version " +
                                   std::to_string(version) + " in " + path);
  }
  uint64_t num_docs = 0;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_docs));
  if (num_docs != expected_docs) {
    return Status::InvalidArgument(
        "postings snapshot covers " + std::to_string(num_docs) +
        " documents; corpus has " + std::to_string(expected_docs));
  }
  LoadedPostings out;
  CSR_ASSIGN_OR_RETURN(out.content_index, GetIndex(r, expected_docs));
  CSR_ASSIGN_OR_RETURN(out.predicate_index, GetIndex(r, expected_docs));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in postings snapshot");
  }
  return out;
}

Status SaveSegment(const IndexSegment& segment, const std::string& path) {
  if (!segment.sealed) {
    return Status::FailedPrecondition(
        "refusing to persist the unsealed write buffer; it is rebuilt from "
        "the corpus tail at load");
  }
  if (!segment.content.compressed() || !segment.predicate.compressed()) {
    return Status::FailedPrecondition(
        "segment serves uncompressed postings; nothing compressed to "
        "persist");
  }
  BinaryWriter w;
  w.PutU32(kSegmentVersion);
  w.PutU64(segment.id);
  w.PutVarint(segment.base);
  w.PutVarint(segment.num_docs);
  w.PutVarint(segment.years.size());
  for (uint16_t y : segment.years) w.PutVarint(y);
  PutIndex(w, segment.content);
  PutIndex(w, segment.predicate);
  return w.WriteFile(path, kSegmentMagic);
}

Result<IndexSegment> LoadSegment(const std::string& path) {
  CSR_ASSIGN_OR_RETURN(
      BinaryReader r, BinaryReader::OpenFile(path, kSegmentMagic,
                                             SnapshotOpen()));
  uint32_t version = 0;
  CSR_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kSegmentVersion) {
    return Status::InvalidArgument("unsupported segment version " +
                                   std::to_string(version) + " in " + path);
  }
  IndexSegment seg;
  CSR_RETURN_NOT_OK(r.GetU64(&seg.id));
  uint64_t base = 0, num_docs = 0, num_years = 0;
  CSR_RETURN_NOT_OK(r.GetVarint(&base));
  CSR_RETURN_NOT_OK(r.GetVarint(&num_docs));
  CSR_RETURN_NOT_OK(r.GetVarint(&num_years));
  if (num_docs == 0 || num_years != num_docs) {
    return Status::InvalidArgument(
        "segment header disagrees with its year table in " + path);
  }
  seg.base = static_cast<DocId>(base);
  seg.num_docs = static_cast<uint32_t>(num_docs);
  seg.sealed = true;
  seg.years.reserve(num_years);
  for (uint64_t i = 0; i < num_years; ++i) {
    uint64_t y = 0;
    CSR_RETURN_NOT_OK(r.GetVarint(&y));
    seg.years.push_back(static_cast<uint16_t>(y));
  }
  CSR_ASSIGN_OR_RETURN(seg.content, GetIndex(r, num_docs));
  CSR_ASSIGN_OR_RETURN(seg.predicate, GetIndex(r, num_docs));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in segment file " + path);
  }
  return seg;
}

namespace {

/// Size + FNV-1a over a whole file's bytes, for the manifest.
Status HashFile(const std::string& path, uint64_t* size, uint64_t* sum) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  uint64_t h = 0xCBF29CE484222325ULL;
  uint64_t n = 0;
  char buf[1 << 14];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 0x100000001B3ULL;
    }
    n += got;
  }
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::Internal("read error: " + path);
  *size = n;
  *sum = h;
  return Status::OK();
}

/// One sealed segment recorded in a v2 manifest. The inventory — not the
/// seg files on disk — is authoritative for which segments the snapshot
/// contains: a crash between writing a merged segment's file and the
/// manifest swap leaves an orphan file that is simply never consulted, so
/// a half-merged segment is never served.
struct ManifestSegment {
  uint64_t id = 0;
  DocId base = 0;
  uint32_t num_docs = 0;
};

struct ManifestInfo {
  bool present = false;
  /// True for v2+ manifests: base_docs and segments are meaningful. v1
  /// manifests describe whole-collection bases with no extras.
  bool has_layout = false;
  uint64_t base_docs = 0;
  uint64_t total_docs = 0;
  std::vector<ManifestSegment> segments;
};

Status SaveManifest(const std::string& dir, uint64_t base_docs,
                    uint64_t total_docs,
                    const std::vector<ManifestSegment>& segments,
                    const std::vector<std::string>& names) {
  BinaryWriter w;
  w.PutU32(kManifestVersion);
  w.PutU32(kSnapshotFormatVersion);
  w.PutVarint(base_docs);
  w.PutVarint(total_docs);
  w.PutVarint(segments.size());
  for (const ManifestSegment& s : segments) {
    w.PutU64(s.id);
    w.PutVarint(s.base);
    w.PutVarint(s.num_docs);
  }
  w.PutVarint(names.size());
  for (const std::string& name : names) {
    uint64_t size = 0, sum = 0;
    CSR_RETURN_NOT_OK(HashFile(dir + "/" + name, &size, &sum));
    w.PutString(name);
    w.PutU64(size);
    w.PutU64(sum);
  }
  // WriteFile is temp + fsync + rename: the manifest swap is the snapshot's
  // commit point.
  return w.WriteFile(dir + "/MANIFEST.csr", kManifestMagic);
}

/// Reads and verifies the manifest when present. Listed files must exist —
/// a missing one means a torn multi-file save or a partially copied
/// snapshot, which is kDataLoss (seg files are the exception: the loader
/// quarantines those per segment and rebuilds from the corpus). Content
/// integrity is delegated to each file's own checksums: corpus.csr is
/// strict, views.csr self-heals per frame, so a manifest-level byte
/// comparison would only turn salvageable corruption into a wholesale
/// failure.
Result<ManifestInfo> ReadManifest(const std::string& dir) {
  ManifestInfo info;
  auto r = BinaryReader::OpenFile(dir + "/MANIFEST.csr", kManifestMagic,
                                  SnapshotOpen());
  if (!r.ok()) {
    // Pre-manifest snapshots stay loadable; anything but "absent" is real.
    if (r.status().code() == StatusCode::kNotFound) return info;
    return r.status();
  }
  info.present = true;
  uint32_t manifest_version = 0, format_version = 0;
  CSR_RETURN_NOT_OK(r->GetU32(&manifest_version));
  CSR_RETURN_NOT_OK(r->GetU32(&format_version));
  if (manifest_version < kManifestMinVersion ||
      manifest_version > kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(manifest_version));
  }
  if (format_version < kSnapshotFormatMinVersion ||
      format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(format_version));
  }
  if (manifest_version >= 2) {
    info.has_layout = true;
    CSR_RETURN_NOT_OK(r->GetVarint(&info.base_docs));
    CSR_RETURN_NOT_OK(r->GetVarint(&info.total_docs));
    uint64_t num_segments = 0;
    CSR_RETURN_NOT_OK(r->GetVarint(&num_segments));
    info.segments.reserve(num_segments);
    for (uint64_t i = 0; i < num_segments; ++i) {
      ManifestSegment s;
      uint64_t base = 0, num_docs = 0;
      CSR_RETURN_NOT_OK(r->GetU64(&s.id));
      CSR_RETURN_NOT_OK(r->GetVarint(&base));
      CSR_RETURN_NOT_OK(r->GetVarint(&num_docs));
      s.base = static_cast<DocId>(base);
      s.num_docs = static_cast<uint32_t>(num_docs);
      info.segments.push_back(s);
    }
  }
  uint64_t num_files = 0;
  CSR_RETURN_NOT_OK(r->GetVarint(&num_files));
  for (uint64_t i = 0; i < num_files; ++i) {
    std::string name;
    uint64_t size = 0, sum = 0;
    CSR_RETURN_NOT_OK(r->GetString(&name));
    CSR_RETURN_NOT_OK(r->GetU64(&size));
    CSR_RETURN_NOT_OK(r->GetU64(&sum));
    if (name.rfind("seg-", 0) == 0) continue;  // per-segment salvage below
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "rb");
    if (f == nullptr) {
      return Status::DataLoss("snapshot incomplete: manifest lists missing " +
                              name);
    }
    std::fclose(f);
  }
  return info;
}

/// Rebuilds one sealed segment directly from the corpus slice — the
/// recovery path when a seg file is corrupt, truncated, or missing. The
/// corpus is ground truth, so the rebuilt segment is bit-identical to the
/// lost one after compaction.
Result<IndexSegment> BuildSegmentFromCorpus(const Corpus& corpus, uint64_t id,
                                            DocId first, uint32_t num_docs,
                                            const EngineConfig& config) {
  IndexBuilder content_builder(config.segment_size);
  IndexBuilder predicate_builder(config.segment_size);
  IndexSegment seg;
  seg.id = id;
  seg.base = first;
  seg.num_docs = num_docs;
  seg.sealed = true;
  seg.years.reserve(num_docs);
  for (DocId i = first; i < first + num_docs; ++i) {
    const Document& d = corpus.docs[i];
    CSR_RETURN_NOT_OK(content_builder.AddDocument(i - first,
                                                  d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(i - first,
                                                    d.annotations));
    seg.years.push_back(d.year);
  }
  seg.content = content_builder.Build();
  seg.predicate = predicate_builder.Build();
  if (config.compressed_postings) {
    seg.content.Compact(/*block_size=*/0, config.codec_policy);
    seg.predicate.Compact(/*block_size=*/0, config.codec_policy);
  }
  return seg;
}

}  // namespace

Status SaveEngineSnapshot(const ContextSearchEngine& engine,
                          const std::string& dir) {
  // One LiveSet snapshot fixes which segments this save describes; the
  // caller must not append concurrently (the corpus serializer walks
  // corpus.docs, which appends mutate).
  std::shared_ptr<const LiveSet> live = engine.LiveSnapshot();
  CSR_RETURN_NOT_OK(SaveCorpus(engine.corpus(), dir + "/corpus.csr"));
  CSR_RETURN_NOT_OK(SaveViews(engine.catalog(), engine.tracked(),
                              dir + "/views.csr", live->base_docs));
  std::vector<std::string> names = {"corpus.csr", "views.csr"};
  bool compressed = engine.content_index().compressed() &&
                    engine.predicate_index().compressed();
  if (compressed) {
    CSR_RETURN_NOT_OK(SavePostings(engine, dir + "/postings.csr"));
    names.push_back("postings.csr");
  }
  // Sealed, compressed extras persist block bytes verbatim; the unsealed
  // write buffer (and, in uncompressed configurations, every extra) is
  // omitted — the loader rebuilds those ranges from the corpus.
  std::vector<ManifestSegment> segments;
  for (const auto& es : live->extras) {
    if (!es->index.sealed || !es->index.content.compressed()) continue;
    std::string name = "seg-" + std::to_string(es->index.id) + ".csr";
    CSR_RETURN_NOT_OK(SaveSegment(es->index, dir + "/" + name));
    names.push_back(name);
    segments.push_back(ManifestSegment{es->index.id, es->index.base,
                                       es->index.num_docs});
  }
  // Manifest last: a crash before this point leaves no (or a stale)
  // manifest rather than a manifest describing files that never landed.
  return SaveManifest(dir, live->base_docs, live->total_docs, segments,
                      names);
}

Result<std::unique_ptr<ContextSearchEngine>> LoadEngineSnapshot(
    const std::string& dir, const EngineConfig& config) {
  CSR_ASSIGN_OR_RETURN(ManifestInfo manifest, ReadManifest(dir));
  CSR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(dir + "/corpus.csr"));
  uint64_t base_docs =
      manifest.has_layout ? manifest.base_docs : corpus.docs.size();
  if (base_docs == 0 || base_docs > corpus.docs.size()) {
    return Status::DataLoss(
        "manifest base (" + std::to_string(base_docs) +
        " docs) does not fit the corpus (" +
        std::to_string(corpus.docs.size()) + " docs)");
  }

  std::unique_ptr<ContextSearchEngine> engine;
  if (config.compressed_postings) {
    // Fast path: install the persisted compressed base postings directly.
    // Any failure (absent file, checksum mismatch, bad metadata, doc-count
    // mismatch with the manifest) falls back to rebuilding from the corpus
    // — a stale or damaged postings file costs load time, not correctness.
    Result<LoadedPostings> lp =
        LoadPostings(dir + "/postings.csr", base_docs);
    if (lp.ok()) {
      CSR_ASSIGN_OR_RETURN(
          engine, ContextSearchEngine::BuildWithIndexes(
                      std::move(corpus), config, std::move(lp->content_index),
                      std::move(lp->predicate_index)));
    }
  }
  if (engine == nullptr) {
    if (base_docs == corpus.docs.size()) {
      CSR_ASSIGN_OR_RETURN(
          engine, ContextSearchEngine::Build(std::move(corpus), config));
    } else {
      // Segmented snapshot with unusable base postings: rebuild the BASE
      // PREFIX only, so the persisted views (which cover exactly the base)
      // still align.
      IndexBuilder content_builder(config.segment_size);
      IndexBuilder predicate_builder(config.segment_size);
      for (DocId i = 0; i < base_docs; ++i) {
        const Document& d = corpus.docs[i];
        CSR_RETURN_NOT_OK(
            content_builder.AddDocument(i, d.ContentTokens()));
        CSR_RETURN_NOT_OK(predicate_builder.AddDocument(i, d.annotations));
      }
      CSR_ASSIGN_OR_RETURN(
          engine, ContextSearchEngine::BuildWithIndexes(
                      std::move(corpus), config, content_builder.Build(),
                      predicate_builder.Build()));
    }
  }
  CSR_ASSIGN_OR_RETURN(LoadedViews views, LoadViews(dir + "/views.csr"));
  if (views.base_docs != 0 && views.base_docs != engine->base_docs()) {
    // Torn multi-file save: views.csr aggregated over a different base
    // than this load reconstructed (e.g. a crash left a newer views file
    // next to an older — or absent — manifest). Installing them would
    // silently mis-rank, so quarantine the whole catalog instead; queries
    // degrade to the straightforward plan, which is always correct.
    ViewCatalog none;
    for (const QuarantinedView& q : views.catalog.quarantined()) {
      none.RecordQuarantine(q);
    }
    std::string reason =
        "views aggregate a " + std::to_string(views.base_docs) +
        "-doc base but the snapshot base covers " +
        std::to_string(engine->base_docs()) + " docs (torn save)";
    for (size_t i = 0; i < views.catalog.size(); ++i) {
      none.RecordQuarantine(QuarantinedView{
          views.catalog.view(i).def().keyword_columns, reason});
    }
    CSR_RETURN_NOT_OK(
        engine->InstallCatalog(std::move(none), engine->tracked().terms()));
  } else {
    CSR_RETURN_NOT_OK(engine->InstallCatalog(std::move(views.catalog),
                                             views.tracked_terms));
  }

  // Reinstall the sealed extras in ascending base order. Any per-segment
  // failure — unreadable file, checksum mismatch, header/manifest
  // disagreement, installation rejection — quarantines that segment and
  // rebuilds its exact docid range from the corpus, so recovery always
  // converges on the manifest's layout.
  std::vector<ManifestSegment> inventory = manifest.segments;
  std::sort(inventory.begin(), inventory.end(),
            [](const ManifestSegment& a, const ManifestSegment& b) {
              return a.base < b.base;
            });
  for (const ManifestSegment& ms : inventory) {
    uint64_t live_end = engine->total_docs();
    uint64_t ms_end = static_cast<uint64_t>(ms.base) + ms.num_docs;
    if (ms.num_docs == 0 || ms.base != live_end ||
        ms_end > engine->corpus().docs.size()) {
      // A layout hole or overlap: the inventory itself is inconsistent.
      // Skip the entry; the tail rebuild below covers whatever is missing.
      engine->RecordSegmentQuarantine();
      continue;
    }
    bool installed = false;
    Result<IndexSegment> seg =
        LoadSegment(dir + "/seg-" + std::to_string(ms.id) + ".csr");
    if (seg.ok() && seg->id == ms.id && seg->base == ms.base &&
        seg->num_docs == ms.num_docs) {
      installed = engine->InstallSealedSegment(std::move(*seg)).ok();
    }
    if (!installed) {
      engine->RecordSegmentQuarantine();
      CSR_ASSIGN_OR_RETURN(
          IndexSegment rebuilt,
          BuildSegmentFromCorpus(engine->corpus(), ms.id, ms.base,
                                 ms.num_docs, config));
      CSR_RETURN_NOT_OK(engine->InstallSealedSegment(std::move(rebuilt)));
    }
  }

  // The unsealed write buffer is never persisted; rebuild the remaining
  // corpus tail (sealing full chunks, buffering the rest).
  if (engine->total_docs() < engine->corpus().docs.size()) {
    CSR_RETURN_NOT_OK(engine->RebuildSegmentsFromCorpus(
        static_cast<DocId>(engine->total_docs())));
  }
  return engine;
}

}  // namespace csr
