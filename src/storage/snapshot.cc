#include "storage/snapshot.h"

#include <utility>

namespace csr {

namespace {

constexpr uint32_t kCorpusMagic = 0x43535243;  // "CSRC"
constexpr uint32_t kViewsMagic = 0x43535256;   // "CSRV"
constexpr uint32_t kCorpusVersion = 1;
constexpr uint32_t kViewsVersion = 1;

void PutConfig(BinaryWriter& w, const CorpusConfig& c) {
  w.PutU64(c.seed);
  w.PutU32(c.num_docs);
  w.PutU32(c.vocab_size);
  w.PutVarintVector(c.ontology_fanouts);
  w.PutDouble(c.leaf_zipf_exponent);
  w.PutU32(c.max_concepts_per_doc);
  w.PutU32(c.title_len_mean);
  w.PutU32(c.abstract_len_mean);
  w.PutDouble(c.topical_prob);
  w.PutU32(c.topical_window);
  w.PutDouble(c.background_zipf_exponent);
  w.PutDouble(c.topical_zipf_exponent);
  w.PutVarint(c.year_min);
  w.PutVarint(c.year_max);
}

Status GetConfig(BinaryReader& r, CorpusConfig* c) {
  CSR_RETURN_NOT_OK(r.GetU64(&c->seed));
  CSR_RETURN_NOT_OK(r.GetU32(&c->num_docs));
  CSR_RETURN_NOT_OK(r.GetU32(&c->vocab_size));
  CSR_RETURN_NOT_OK(r.GetVarintVector(&c->ontology_fanouts));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->leaf_zipf_exponent));
  CSR_RETURN_NOT_OK(r.GetU32(&c->max_concepts_per_doc));
  CSR_RETURN_NOT_OK(r.GetU32(&c->title_len_mean));
  CSR_RETURN_NOT_OK(r.GetU32(&c->abstract_len_mean));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->topical_prob));
  CSR_RETURN_NOT_OK(r.GetU32(&c->topical_window));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->background_zipf_exponent));
  CSR_RETURN_NOT_OK(r.GetDouble(&c->topical_zipf_exponent));
  uint64_t ymin, ymax;
  CSR_RETURN_NOT_OK(r.GetVarint(&ymin));
  CSR_RETURN_NOT_OK(r.GetVarint(&ymax));
  c->year_min = static_cast<uint16_t>(ymin);
  c->year_max = static_cast<uint16_t>(ymax);
  return Status::OK();
}

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  BinaryWriter w;
  w.PutU32(kCorpusVersion);
  PutConfig(w, corpus.config);

  // Ontology: ids are assigned in construction order, so parents always
  // precede children and the (parent, name) arrays rebuild it exactly.
  w.PutVarint(corpus.ontology.size());
  for (TermId t = 0; t < corpus.ontology.size(); ++t) {
    TermId p = corpus.ontology.parent(t);
    w.PutVarint(p == kInvalidTermId ? 0 : static_cast<uint64_t>(p) + 1);
    w.PutString(corpus.ontology.name(t));
  }

  w.PutVarint(corpus.docs.size());
  for (const Document& d : corpus.docs) {
    w.PutVarint(d.year);
    w.PutVarintVector(d.title);
    w.PutVarintVector(d.abstract_text);
    w.PutVarintVector(d.annotations);
  }
  return w.WriteFile(path, kCorpusMagic);
}

Result<Corpus> LoadCorpus(const std::string& path) {
  CSR_ASSIGN_OR_RETURN(BinaryReader r,
                       BinaryReader::OpenFile(path, kCorpusMagic));
  uint32_t version;
  CSR_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kCorpusVersion) {
    return Status::InvalidArgument("unsupported corpus version");
  }
  Corpus corpus;
  CSR_RETURN_NOT_OK(GetConfig(r, &corpus.config));

  uint64_t num_concepts;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_concepts));
  for (uint64_t t = 0; t < num_concepts; ++t) {
    uint64_t parent_plus1;
    std::string name;
    CSR_RETURN_NOT_OK(r.GetVarint(&parent_plus1));
    CSR_RETURN_NOT_OK(r.GetString(&name));
    if (parent_plus1 == 0) {
      corpus.ontology.AddRoot(std::move(name));
    } else {
      TermId parent = static_cast<TermId>(parent_plus1 - 1);
      if (parent >= t) {
        return Status::InvalidArgument("corrupt ontology: child before parent");
      }
      CSR_RETURN_NOT_OK(
          corpus.ontology.AddChild(parent, std::move(name)).status());
    }
  }

  uint64_t num_docs;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_docs));
  corpus.docs.reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    Document d;
    d.id = static_cast<DocId>(i);
    uint64_t year;
    CSR_RETURN_NOT_OK(r.GetVarint(&year));
    d.year = static_cast<uint16_t>(year);
    CSR_RETURN_NOT_OK(r.GetVarintVector(&d.title));
    CSR_RETURN_NOT_OK(r.GetVarintVector(&d.abstract_text));
    CSR_RETURN_NOT_OK(r.GetVarintVector(&d.annotations));
    corpus.docs.push_back(std::move(d));
  }
  return corpus;
}

/// Accesses MaterializedView internals for persistence (friend).
class ViewSerializer {
 public:
  static void Save(const MaterializedView& v, BinaryWriter& w) {
    w.PutVarintVector(v.def_.keyword_columns);
    w.PutU8(v.options_.track_df);
    w.PutU8(v.options_.track_tc);
    w.PutVarint(v.options_.year_bucket_size);
    w.PutU32(v.num_tracked_);
    w.PutVarint(v.rows_.size());
    for (const auto& [key, row] : v.rows_) {
      w.PutVarint(key.bucket);
      w.PutVarintVector(key.sig.raw_words());
      w.PutVarint(row.count);
      w.PutVarint(row.sum_len);
      w.PutVarintVector(row.df);
      w.PutVarintVector(row.tc);
    }
  }

  static Result<MaterializedView> Load(BinaryReader& r) {
    ViewDefinition def;
    CSR_RETURN_NOT_OK(r.GetVarintVector(&def.keyword_columns));
    uint8_t track_df, track_tc;
    CSR_RETURN_NOT_OK(r.GetU8(&track_df));
    CSR_RETURN_NOT_OK(r.GetU8(&track_tc));
    uint64_t bucket_size;
    CSR_RETURN_NOT_OK(r.GetVarint(&bucket_size));
    uint32_t num_tracked;
    CSR_RETURN_NOT_OK(r.GetU32(&num_tracked));
    ViewParamOptions options{track_df != 0, track_tc != 0,
                             static_cast<uint16_t>(bucket_size)};
    MaterializedView v(std::move(def), options, num_tracked);

    uint64_t num_rows;
    CSR_RETURN_NOT_OK(r.GetVarint(&num_rows));
    size_t expected_words =
        (v.def_.keyword_columns.size() + 63) / 64;
    for (uint64_t i = 0; i < num_rows; ++i) {
      uint64_t bucket;
      CSR_RETURN_NOT_OK(r.GetVarint(&bucket));
      std::vector<uint64_t> words;
      CSR_RETURN_NOT_OK(r.GetVarintVector(&words));
      if (words.size() != expected_words) {
        return Status::InvalidArgument("corrupt view row signature");
      }
      MaterializedView::Row row;
      CSR_RETURN_NOT_OK(r.GetVarint(&row.count));
      CSR_RETURN_NOT_OK(r.GetVarint(&row.sum_len));
      CSR_RETURN_NOT_OK(r.GetVarintVector(&row.df));
      CSR_RETURN_NOT_OK(r.GetVarintVector(&row.tc));
      v.rows_.emplace(
          MaterializedView::TupleKey{
              BitSignature::FromWords(std::move(words)),
              static_cast<uint16_t>(bucket)},
          std::move(row));
    }
    return v;
  }
};

Status SaveViews(const ViewCatalog& catalog, const TrackedKeywords& tracked,
                 const std::string& path) {
  BinaryWriter w;
  w.PutU32(kViewsVersion);
  w.PutVarintVector(tracked.terms());
  w.PutVarint(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    ViewSerializer::Save(catalog.view(i), w);
  }
  return w.WriteFile(path, kViewsMagic);
}

Result<LoadedViews> LoadViews(const std::string& path) {
  CSR_ASSIGN_OR_RETURN(BinaryReader r,
                       BinaryReader::OpenFile(path, kViewsMagic));
  uint32_t version;
  CSR_RETURN_NOT_OK(r.GetU32(&version));
  if (version != kViewsVersion) {
    return Status::InvalidArgument("unsupported views version");
  }
  LoadedViews out;
  CSR_RETURN_NOT_OK(r.GetVarintVector(&out.tracked_terms));
  uint64_t num_views;
  CSR_RETURN_NOT_OK(r.GetVarint(&num_views));
  for (uint64_t i = 0; i < num_views; ++i) {
    CSR_ASSIGN_OR_RETURN(MaterializedView v, ViewSerializer::Load(r));
    out.catalog.Add(std::move(v));
  }
  return out;
}

Status SaveEngineSnapshot(const ContextSearchEngine& engine,
                          const std::string& dir) {
  CSR_RETURN_NOT_OK(SaveCorpus(engine.corpus(), dir + "/corpus.csr"));
  return SaveViews(engine.catalog(), engine.tracked(), dir + "/views.csr");
}

Result<std::unique_ptr<ContextSearchEngine>> LoadEngineSnapshot(
    const std::string& dir, const EngineConfig& config) {
  CSR_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(dir + "/corpus.csr"));
  CSR_ASSIGN_OR_RETURN(std::unique_ptr<ContextSearchEngine> engine,
                       ContextSearchEngine::Build(std::move(corpus), config));
  CSR_ASSIGN_OR_RETURN(LoadedViews views, LoadViews(dir + "/views.csr"));
  CSR_RETURN_NOT_OK(engine->InstallCatalog(std::move(views.catalog),
                                           views.tracked_terms));
  return engine;
}

}  // namespace csr
