#ifndef CSR_VIEWS_WIDE_TABLE_H_
#define CSR_VIEWS_WIDE_TABLE_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "util/types.h"

namespace csr {

/// The set of "tracked" keywords whose per-context document counts are
/// stored as view parameter columns. Following Section 6.2, a keyword w is
/// tracked iff |L_w| >= min_df (the paper uses min_df = T_C, yielding 910
/// tracked keywords on PubMed); df of untracked keywords is cheap to compute
/// at query time precisely because their lists are short.
class TrackedKeywords {
 public:
  TrackedKeywords() = default;

  /// Selects keywords with df >= min_df from the content index, capped at
  /// `cap` keywords (most frequent first) to bound view storage.
  static TrackedKeywords Select(const InvertedIndex& content_index,
                                uint64_t min_df, uint32_t cap = 4096);

  /// Rebuilds a table from a persisted term list (snapshot load). The
  /// tracked set is frozen at the original Build — recomputing it over a
  /// collection that has since grown would drift — so loads adopt the
  /// saved set verbatim. `terms` must be the sorted slot order the views
  /// were built against (TrackedKeywords::terms() round-trips it).
  static TrackedKeywords FromTerms(std::vector<TermId> terms);

  size_t size() const { return terms_.size(); }

  /// Slot of keyword w among tracked keywords, or -1 if untracked.
  int32_t SlotOf(TermId w) const {
    auto it = slots_.find(w);
    return it == slots_.end() ? -1 : static_cast<int32_t>(it->second);
  }

  bool IsTracked(TermId w) const { return slots_.count(w) > 0; }

  TermId TermAt(uint32_t slot) const { return terms_[slot]; }
  const std::vector<TermId>& terms() const { return terms_; }

 private:
  std::vector<TermId> terms_;  // sorted by TermId
  std::unordered_map<TermId, uint32_t> slots_;
};

/// A materialization of the wide sparse table T of Section 4.1, restricted
/// to what view building needs per document (row): the parameter columns
/// len(d) and tf(d, w) for tracked keywords w, in forward (document-major)
/// order. Keyword columns (the 0/1 context-predicate entries) stay in the
/// corpus' per-document annotation sets.
///
/// Stored CSR-style: tracked (slot, tf) pairs of document d live in
/// entries_[offsets_[d] .. offsets_[d+1]).
class DocParamTable {
 public:
  /// One pass over the tracked keywords' posting lists.
  static DocParamTable Build(const InvertedIndex& content_index,
                             const TrackedKeywords& tracked);

  uint64_t num_docs() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  uint32_t doc_length(DocId d) const { return doc_lengths_[d]; }

  /// The tracked keywords present in document d, as (slot, tf) pairs sorted
  /// by slot.
  std::span<const std::pair<uint32_t, uint32_t>> TrackedOf(DocId d) const {
    return std::span(entries_).subspan(offsets_[d],
                                       offsets_[d + 1] - offsets_[d]);
  }

  uint64_t MemoryBytes() const {
    return entries_.size() * sizeof(entries_[0]) +
           offsets_.size() * sizeof(uint64_t) +
           doc_lengths_.size() * sizeof(uint32_t);
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<std::pair<uint32_t, uint32_t>> entries_;  // (slot, tf)
  std::vector<uint32_t> doc_lengths_;
};

}  // namespace csr

#endif  // CSR_VIEWS_WIDE_TABLE_H_
