#include "views/materialized_view.h"

#include <algorithm>
#include <numeric>

namespace csr {

void MaterializedView::AddDocument(
    const BitSignature& sig, uint32_t doc_length,
    std::span<const std::pair<uint32_t, uint32_t>> tracked_terms,
    uint16_t year) {
  if (compacted_) Uncompact();
  TupleKey key{sig, 0};
  if (options_.year_bucket_size > 0) {
    key.bucket = static_cast<uint16_t>(year / options_.year_bucket_size);
  }
  Row& row = rows_[key];
  if (row.count == 0 && options_.track_df) {
    row.df.assign(num_tracked_, 0);
  }
  if (row.count == 0 && options_.track_tc) {
    row.tc.assign(num_tracked_, 0);
  }
  row.count++;
  row.sum_len += doc_length;
  if (options_.track_df || options_.track_tc) {
    for (const auto& [slot, tf] : tracked_terms) {
      if (options_.track_df) row.df[slot]++;
      if (options_.track_tc) row.tc[slot] += tf;
    }
  }
}

MaterializedView MaterializedView::Clone() const {
  MaterializedView copy(def_, options_, num_tracked_);
  copy.rows_ = rows_;
  copy.compacted_ = compacted_;
  copy.flat_ = flat_;
  return copy;
}

void MaterializedView::MergeFrom(const MaterializedView& other) {
  if (compacted_) Uncompact();
  auto upsert = [&](const TupleKey& key, uint64_t count, uint64_t sum_len,
                    const uint32_t* df_row, const uint32_t* tc_row) {
    Row& row = rows_[key];
    if (row.count == 0 && options_.track_df) row.df.assign(num_tracked_, 0);
    if (row.count == 0 && options_.track_tc) row.tc.assign(num_tracked_, 0);
    row.count += count;
    row.sum_len += sum_len;
    if (options_.track_df && df_row != nullptr) {
      for (uint32_t s = 0; s < num_tracked_; ++s) row.df[s] += df_row[s];
    }
    if (options_.track_tc && tc_row != nullptr) {
      for (uint32_t s = 0; s < num_tracked_; ++s) row.tc[s] += tc_row[s];
    }
  };
  if (other.compacted_) {
    const FlatRows& f = other.flat_;
    for (size_t r = 0; r < f.keys.size(); ++r) {
      upsert(f.keys[r], f.counts[r], f.sum_lens[r],
             f.df.empty() ? nullptr : f.df.data() + r * num_tracked_,
             f.tc.empty() ? nullptr : f.tc.data() + r * num_tracked_);
    }
  } else {
    for (const auto& [key, row] : other.rows_) {
      upsert(key, row.count, row.sum_len,
             row.df.empty() ? nullptr : row.df.data(),
             row.tc.empty() ? nullptr : row.tc.data());
    }
  }
}

bool MaterializedView::RangeAnswerable(YearRange range) const {
  if (!range.active()) return true;
  uint16_t b = options_.year_bucket_size;
  if (b == 0) return false;
  // The range must cover whole buckets: [min, max] answerable iff min is a
  // bucket start and max is a bucket end.
  return range.min_year % b == 0 && (range.max_year + 1) % b == 0 &&
         range.min_year <= range.max_year;
}

MaterializedView::StatsResult MaterializedView::ComputeStats(
    std::span<const TermId> context, std::span<const TermId> keywords,
    const TrackedKeywords& tracked, CostCounters* cost,
    YearRange range) const {
  StatsResult out;
  out.df.assign(keywords.size(), 0);
  out.tc.assign(keywords.size(), 0);
  out.covered.assign(keywords.size(), false);

  if (!def_.Covers(context)) return out;
  if (!RangeAnswerable(range)) {
    out.range_answerable = false;
    return out;
  }
  uint16_t bucket_lo = 0;
  uint16_t bucket_hi = UINT16_MAX;
  if (range.active()) {
    bucket_lo = static_cast<uint16_t>(range.min_year /
                                      options_.year_bucket_size);
    bucket_hi = static_cast<uint16_t>(range.max_year /
                                      options_.year_bucket_size);
  }

  // Which keywords have a parameter column in this view.
  std::vector<int32_t> slots(keywords.size(), -1);
  for (size_t i = 0; i < keywords.size(); ++i) {
    int32_t slot = tracked.SlotOf(keywords[i]);
    slots[i] = slot;
    out.covered[i] = slot >= 0 && (options_.track_df || options_.track_tc);
  }

  // Build the probe mask for P.
  BitSignature mask(def_.num_columns());
  for (TermId m : context) {
    int32_t bit = def_.BitOf(m);
    if (bit < 0) return out;  // unreachable given Covers(context)
    mask.Set(static_cast<uint32_t>(bit));
  }

  // Full scan of the view (Theorem 4.2), over whichever row store is live.
  auto fold = [&](const TupleKey& key, uint64_t count, uint64_t sum_len,
                  const uint32_t* df_row, const uint32_t* tc_row) {
    if (cost != nullptr) cost->view_tuples_scanned++;
    if (key.bucket < bucket_lo || key.bucket > bucket_hi) return;
    if (!key.sig.ContainsAll(mask)) return;
    out.cardinality += count;
    out.total_length += sum_len;
    for (size_t i = 0; i < keywords.size(); ++i) {
      if (slots[i] < 0) continue;
      if (options_.track_df && df_row != nullptr) {
        out.df[i] += df_row[slots[i]];
      }
      if (options_.track_tc && tc_row != nullptr) {
        out.tc[i] += tc_row[slots[i]];
      }
    }
  };
  if (compacted_) {
    for (size_t r = 0; r < flat_.keys.size(); ++r) {
      fold(flat_.keys[r], flat_.counts[r], flat_.sum_lens[r],
           flat_.df.empty() ? nullptr : flat_.df.data() + r * num_tracked_,
           flat_.tc.empty() ? nullptr : flat_.tc.data() + r * num_tracked_);
    }
  } else {
    for (const auto& [key, row] : rows_) {
      fold(key, row.count, row.sum_len,
           row.df.empty() ? nullptr : row.df.data(),
           row.tc.empty() ? nullptr : row.tc.data());
    }
  }
  return out;
}

void MaterializedView::Compact() {
  if (compacted_) return;
  // A view rebuilt after a corrupt-snapshot fallback may carry stale
  // flat-row scratch from before the rebuild; re-compaction must flatten
  // only rows_, or the appends below would duplicate tuples and the
  // second Compact of an idempotence round-trip would diverge byte-wise.
  flat_ = FlatRows();
  // Sort by (bucket, signature words) so the compacted order — and
  // therefore serialized snapshots — is deterministic, unlike hash-map
  // iteration.
  std::vector<const std::pair<const TupleKey, Row>*> sorted;
  sorted.reserve(rows_.size());
  for (const auto& kv : rows_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    if (a->first.bucket != b->first.bucket) {
      return a->first.bucket < b->first.bucket;
    }
    return a->first.sig.raw_words() < b->first.sig.raw_words();
  });

  size_t n = sorted.size();
  flat_.keys.reserve(n);
  flat_.counts.reserve(n);
  flat_.sum_lens.reserve(n);
  if (options_.track_df) flat_.df.reserve(n * num_tracked_);
  if (options_.track_tc) flat_.tc.reserve(n * num_tracked_);
  for (const auto* kv : sorted) {
    const Row& row = kv->second;
    flat_.keys.push_back(kv->first);
    flat_.counts.push_back(row.count);
    flat_.sum_lens.push_back(row.sum_len);
    if (options_.track_df) {
      if (row.df.empty()) {
        flat_.df.insert(flat_.df.end(), num_tracked_, 0);
      } else {
        flat_.df.insert(flat_.df.end(), row.df.begin(), row.df.end());
      }
    }
    if (options_.track_tc) {
      if (row.tc.empty()) {
        flat_.tc.insert(flat_.tc.end(), num_tracked_, 0);
      } else {
        flat_.tc.insert(flat_.tc.end(), row.tc.begin(), row.tc.end());
      }
    }
  }
  rows_ = {};
  compacted_ = true;
}

void MaterializedView::Uncompact() {
  if (!compacted_) return;
  rows_.reserve(flat_.keys.size());
  for (size_t r = 0; r < flat_.keys.size(); ++r) {
    Row& row = rows_[flat_.keys[r]];
    row.count = flat_.counts[r];
    row.sum_len = flat_.sum_lens[r];
    if (!flat_.df.empty()) {
      auto it = flat_.df.begin() + static_cast<ptrdiff_t>(r * num_tracked_);
      row.df.assign(it, it + num_tracked_);
    }
    if (!flat_.tc.empty()) {
      auto it = flat_.tc.begin() + static_cast<ptrdiff_t>(r * num_tracked_);
      row.tc.assign(it, it + num_tracked_);
    }
  }
  flat_ = FlatRows();
  compacted_ = false;
}

uint64_t MaterializedView::MemoryBytes() const {
  uint64_t sig_bytes = 0;
  if (NumTuples() > 0) {
    sig_bytes = (compacted_ ? flat_.keys.front().sig : rows_.begin()->first.sig)
                    .raw_words()
                    .size() *
                sizeof(uint64_t);
  }
  if (compacted_) {
    return flat_.keys.size() * (sizeof(TupleKey) + sig_bytes +
                                sizeof(uint64_t) * 2) +
           (flat_.df.size() + flat_.tc.size()) * sizeof(uint32_t);
  }
  uint64_t bytes = 0;
  for (const auto& [key, row] : rows_) {
    bytes += sizeof(TupleKey) + sig_bytes + sizeof(Row) +
             (row.df.capacity() + row.tc.capacity()) * sizeof(uint32_t) +
             sizeof(void*);  // hash-table node overhead, roughly
  }
  return bytes;
}

uint64_t MaterializedView::StorageBytes() const {
  if (NumTuples() == 0) return 0;
  uint64_t key_bytes = BitSignature(def_.num_columns()).StorageBytes();
  if (options_.year_bucket_size > 0) key_bytes += sizeof(uint16_t);
  uint64_t row_bytes = 2 * sizeof(uint64_t);
  if (options_.track_df) row_bytes += 4ULL * num_tracked_;
  if (options_.track_tc) row_bytes += 4ULL * num_tracked_;
  return NumTuples() * (key_bytes + row_bytes);
}

}  // namespace csr
