#include "views/materialized_view.h"

namespace csr {

void MaterializedView::AddDocument(
    const BitSignature& sig, uint32_t doc_length,
    std::span<const std::pair<uint32_t, uint32_t>> tracked_terms,
    uint16_t year) {
  TupleKey key{sig, 0};
  if (options_.year_bucket_size > 0) {
    key.bucket = static_cast<uint16_t>(year / options_.year_bucket_size);
  }
  Row& row = rows_[key];
  if (row.count == 0 && options_.track_df) {
    row.df.assign(num_tracked_, 0);
  }
  if (row.count == 0 && options_.track_tc) {
    row.tc.assign(num_tracked_, 0);
  }
  row.count++;
  row.sum_len += doc_length;
  if (options_.track_df || options_.track_tc) {
    for (const auto& [slot, tf] : tracked_terms) {
      if (options_.track_df) row.df[slot]++;
      if (options_.track_tc) row.tc[slot] += tf;
    }
  }
}

bool MaterializedView::RangeAnswerable(YearRange range) const {
  if (!range.active()) return true;
  uint16_t b = options_.year_bucket_size;
  if (b == 0) return false;
  // The range must cover whole buckets: [min, max] answerable iff min is a
  // bucket start and max is a bucket end.
  return range.min_year % b == 0 && (range.max_year + 1) % b == 0 &&
         range.min_year <= range.max_year;
}

MaterializedView::StatsResult MaterializedView::ComputeStats(
    std::span<const TermId> context, std::span<const TermId> keywords,
    const TrackedKeywords& tracked, CostCounters* cost,
    YearRange range) const {
  StatsResult out;
  out.df.assign(keywords.size(), 0);
  out.tc.assign(keywords.size(), 0);
  out.covered.assign(keywords.size(), false);

  if (!def_.Covers(context)) return out;
  if (!RangeAnswerable(range)) {
    out.range_answerable = false;
    return out;
  }
  uint16_t bucket_lo = 0;
  uint16_t bucket_hi = UINT16_MAX;
  if (range.active()) {
    bucket_lo = static_cast<uint16_t>(range.min_year /
                                      options_.year_bucket_size);
    bucket_hi = static_cast<uint16_t>(range.max_year /
                                      options_.year_bucket_size);
  }

  // Which keywords have a parameter column in this view.
  std::vector<int32_t> slots(keywords.size(), -1);
  for (size_t i = 0; i < keywords.size(); ++i) {
    int32_t slot = tracked.SlotOf(keywords[i]);
    slots[i] = slot;
    out.covered[i] = slot >= 0 && (options_.track_df || options_.track_tc);
  }

  // Build the probe mask for P.
  BitSignature mask(def_.num_columns());
  for (TermId m : context) {
    int32_t bit = def_.BitOf(m);
    if (bit < 0) return out;  // unreachable given Covers(context)
    mask.Set(static_cast<uint32_t>(bit));
  }

  // Full scan of the view (Theorem 4.2).
  for (const auto& [key, row] : rows_) {
    if (cost != nullptr) cost->view_tuples_scanned++;
    if (key.bucket < bucket_lo || key.bucket > bucket_hi) continue;
    if (!key.sig.ContainsAll(mask)) continue;
    out.cardinality += row.count;
    out.total_length += row.sum_len;
    for (size_t i = 0; i < keywords.size(); ++i) {
      if (slots[i] < 0) continue;
      if (options_.track_df && !row.df.empty()) {
        out.df[i] += row.df[slots[i]];
      }
      if (options_.track_tc && !row.tc.empty()) {
        out.tc[i] += row.tc[slots[i]];
      }
    }
  }
  return out;
}

uint64_t MaterializedView::StorageBytes() const {
  if (rows_.empty()) return 0;
  uint64_t key_bytes = BitSignature(def_.num_columns()).StorageBytes();
  if (options_.year_bucket_size > 0) key_bytes += sizeof(uint16_t);
  uint64_t row_bytes = 2 * sizeof(uint64_t);
  if (options_.track_df) row_bytes += 4ULL * num_tracked_;
  if (options_.track_tc) row_bytes += 4ULL * num_tracked_;
  return rows_.size() * (key_bytes + row_bytes);
}

}  // namespace csr
