#ifndef CSR_VIEWS_VIEW_BUILDER_H_
#define CSR_VIEWS_VIEW_BUILDER_H_

#include <span>
#include <vector>

#include "corpus/generator.h"
#include "views/materialized_view.h"
#include "views/wide_table.h"

namespace csr {

/// Materializes a batch of views in a single pass over the document
/// collection (the GROUP BY of Section 4.1 for every view at once).
///
/// Views do not store the all-zero partition (documents containing none of
/// K): a statistics query for a non-empty context P never aggregates it,
/// and skipping it keeps the builder pass O(Σ_d |annotations(d) ∩ any K|)
/// instead of O(|D| · #views). ViewSize therefore counts partitions with at
/// least one keyword column set; the size estimator uses the same
/// convention.
class ViewBuilder {
 public:
  /// All pointers must outlive the builder. `table_base` is the global
  /// docid backing the table's local row 0: a per-segment DocParamTable is
  /// built from the segment's own content index, so its rows are local
  /// while corpus docids stay global (segment builders pass the segment
  /// base; whole-corpus builders leave it 0).
  ViewBuilder(const Corpus* corpus, const DocParamTable* table,
              ViewParamOptions options, uint32_t num_tracked,
              DocId table_base = 0)
      : corpus_(corpus),
        table_(table),
        options_(options),
        num_tracked_(num_tracked),
        table_base_(table_base) {}

  /// Builds one materialized view per definition.
  std::vector<MaterializedView> BuildAll(
      std::span<const ViewDefinition> defs) const;

  /// Builds one view per definition over the corpus slice [first, end) —
  /// the per-segment view-delta pass. Aggregates cover exactly the slice's
  /// documents, so folding the deltas of a partition of the corpus
  /// reproduces BuildAll bit-for-bit (every column is an integer sum).
  std::vector<MaterializedView> BuildRange(std::span<const ViewDefinition> defs,
                                           DocId first, DocId end) const;

  /// Incremental maintenance: folds documents with id >= first_doc into
  /// the existing views (same routing as BuildAll, restricted to the new
  /// suffix of the corpus). Views must have been built against the same
  /// tracked-keyword table.
  void UpdateAll(std::vector<MaterializedView>& views, DocId first_doc) const;

 private:
  void Route(std::vector<MaterializedView>& views, DocId first_doc,
             DocId end_doc) const;

  const Corpus* corpus_;
  const DocParamTable* table_;
  ViewParamOptions options_;
  uint32_t num_tracked_;
  DocId table_base_;
};

/// Builds one view directly from a segment's indexes, touching NO corpus
/// state: keyword-column signatures come from the predicate index's
/// posting lists, parameter columns from the tracked keywords' content
/// lists, and lengths from the index-side doc-length array. `years` is the
/// segment's local year array (may be empty when the view has no time
/// dimension). Works on compressed and uncompressed indexes alike
/// (everything goes through PostingCursor).
///
/// This is the builder the adaptive controller's background
/// materialization uses: ViewBuilder::Route reads corpus_->docs, which
/// concurrent appends grow (a std::vector reallocation race), while an
/// index inside a published LiveSet snapshot is immutable. Every aggregate
/// is the same integer sum, so the result is identical to a corpus-based
/// BuildRange over the same documents.
///
/// `def` must have at most 64 keyword columns (the adaptive candidate cap
/// enforces this); wider definitions return an empty view.
MaterializedView BuildViewFromIndexes(const ViewDefinition& def,
                                      ViewParamOptions options,
                                      const TrackedKeywords& tracked,
                                      const InvertedIndex& content,
                                      const InvertedIndex& predicate,
                                      std::span<const uint16_t> years);

}  // namespace csr

#endif  // CSR_VIEWS_VIEW_BUILDER_H_
