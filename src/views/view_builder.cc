#include "views/view_builder.h"

#include <unordered_map>

namespace csr {

std::vector<MaterializedView> ViewBuilder::BuildAll(
    std::span<const ViewDefinition> defs) const {
  std::vector<MaterializedView> views;
  views.reserve(defs.size());
  for (const ViewDefinition& def : defs) {
    views.emplace_back(def, options_, num_tracked_);
  }
  Route(views, /*first_doc=*/0, static_cast<DocId>(corpus_->docs.size()));
  return views;
}

std::vector<MaterializedView> ViewBuilder::BuildRange(
    std::span<const ViewDefinition> defs, DocId first, DocId end) const {
  std::vector<MaterializedView> views;
  views.reserve(defs.size());
  for (const ViewDefinition& def : defs) {
    views.emplace_back(def, options_, num_tracked_);
  }
  Route(views, first, end);
  return views;
}

void ViewBuilder::UpdateAll(std::vector<MaterializedView>& views,
                            DocId first_doc) const {
  Route(views, first_doc, static_cast<DocId>(corpus_->docs.size()));
}

void ViewBuilder::Route(std::vector<MaterializedView>& views, DocId first_doc,
                        DocId end_doc) const {
  // Inverted routing: predicate term -> (view index, bit position).
  std::unordered_map<TermId, std::vector<std::pair<uint32_t, uint32_t>>>
      routes;
  for (uint32_t v = 0; v < views.size(); ++v) {
    const TermIdSet& cols = views[v].def().keyword_columns;
    for (uint32_t bit = 0; bit < cols.size(); ++bit) {
      routes[cols[bit]].emplace_back(v, bit);
    }
  }

  // One pass over documents; per document, visit only the views that share
  // at least one keyword column with its annotations.
  std::vector<std::vector<uint32_t>> bits_of_view(views.size());
  std::vector<uint32_t> touched;
  for (size_t i = first_doc; i < end_doc; ++i) {
    const Document& doc = corpus_->docs[i];
    touched.clear();
    for (TermId m : doc.annotations) {
      auto it = routes.find(m);
      if (it == routes.end()) continue;
      for (const auto& [v, bit] : it->second) {
        if (bits_of_view[v].empty()) touched.push_back(v);
        bits_of_view[v].push_back(bit);
      }
    }
    if (touched.empty()) continue;
    auto tracked_terms = table_->TrackedOf(doc.id - table_base_);
    uint32_t len = table_->doc_length(doc.id - table_base_);
    for (uint32_t v : touched) {
      BitSignature sig(views[v].def().num_columns());
      for (uint32_t bit : bits_of_view[v]) sig.Set(bit);
      views[v].AddDocument(sig, len, tracked_terms, doc.year);
      bits_of_view[v].clear();
    }
  }
}

MaterializedView BuildViewFromIndexes(const ViewDefinition& def,
                                      ViewParamOptions options,
                                      const TrackedKeywords& tracked,
                                      const InvertedIndex& content,
                                      const InvertedIndex& predicate,
                                      std::span<const uint16_t> years) {
  const uint32_t num_tracked = static_cast<uint32_t>(tracked.size());
  MaterializedView view(def, options, num_tracked);
  const uint32_t cols = def.num_columns();
  const uint64_t num_docs = content.num_docs();
  if (cols == 0 || cols > 64 || num_docs == 0) return view;

  // Pass 1: one 64-bit signature mask per local document, filled from the
  // predicate posting lists of the view's keyword columns.
  std::vector<uint64_t> masks(num_docs, 0);
  for (uint32_t bit = 0; bit < cols; ++bit) {
    TermId m = def.keyword_columns[bit];
    if (m >= predicate.num_terms()) continue;
    for (PostingCursor c = predicate.cursor(m); c.valid() && !c.AtEnd();
         c.Next()) {
      masks[c.doc()] |= 1ULL << bit;
    }
  }

  // Only documents in a non-empty partition contribute rows (the all-zero
  // partition is never stored); remap them densely.
  std::vector<uint32_t> slot_of_doc(num_docs, UINT32_MAX);
  std::vector<DocId> touched;
  for (uint64_t d = 0; d < num_docs; ++d) {
    if (masks[d] == 0) continue;
    slot_of_doc[d] = static_cast<uint32_t>(touched.size());
    touched.push_back(static_cast<DocId>(d));
  }
  if (touched.empty()) return view;

  // Pass 2: (slot, tf) parameter pairs per touched document from the
  // tracked keywords' content lists. Iterating slots in ascending order
  // appends each document's pairs sorted by slot, matching what a
  // DocParamTable row would hold.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> params(
      touched.size());
  for (uint32_t slot = 0; slot < num_tracked; ++slot) {
    TermId w = tracked.TermAt(slot);
    if (w >= content.num_terms()) continue;
    for (PostingCursor c = content.cursor(w); c.valid() && !c.AtEnd();
         c.Next()) {
      uint32_t t = slot_of_doc[c.doc()];
      if (t != UINT32_MAX) params[t].emplace_back(slot, c.tf());
    }
  }

  for (size_t t = 0; t < touched.size(); ++t) {
    DocId d = touched[t];
    BitSignature sig(cols);
    uint64_t mask = masks[d];
    while (mask != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(mask));
      sig.Set(bit);
      mask &= mask - 1;
    }
    uint16_t year = d < years.size() ? years[d] : 0;
    view.AddDocument(sig, content.doc_length(d), params[t], year);
  }
  return view;
}

}  // namespace csr
