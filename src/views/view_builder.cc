#include "views/view_builder.h"

#include <unordered_map>

namespace csr {

std::vector<MaterializedView> ViewBuilder::BuildAll(
    std::span<const ViewDefinition> defs) const {
  std::vector<MaterializedView> views;
  views.reserve(defs.size());
  for (const ViewDefinition& def : defs) {
    views.emplace_back(def, options_, num_tracked_);
  }
  Route(views, /*first_doc=*/0, static_cast<DocId>(corpus_->docs.size()));
  return views;
}

std::vector<MaterializedView> ViewBuilder::BuildRange(
    std::span<const ViewDefinition> defs, DocId first, DocId end) const {
  std::vector<MaterializedView> views;
  views.reserve(defs.size());
  for (const ViewDefinition& def : defs) {
    views.emplace_back(def, options_, num_tracked_);
  }
  Route(views, first, end);
  return views;
}

void ViewBuilder::UpdateAll(std::vector<MaterializedView>& views,
                            DocId first_doc) const {
  Route(views, first_doc, static_cast<DocId>(corpus_->docs.size()));
}

void ViewBuilder::Route(std::vector<MaterializedView>& views, DocId first_doc,
                        DocId end_doc) const {
  // Inverted routing: predicate term -> (view index, bit position).
  std::unordered_map<TermId, std::vector<std::pair<uint32_t, uint32_t>>>
      routes;
  for (uint32_t v = 0; v < views.size(); ++v) {
    const TermIdSet& cols = views[v].def().keyword_columns;
    for (uint32_t bit = 0; bit < cols.size(); ++bit) {
      routes[cols[bit]].emplace_back(v, bit);
    }
  }

  // One pass over documents; per document, visit only the views that share
  // at least one keyword column with its annotations.
  std::vector<std::vector<uint32_t>> bits_of_view(views.size());
  std::vector<uint32_t> touched;
  for (size_t i = first_doc; i < end_doc; ++i) {
    const Document& doc = corpus_->docs[i];
    touched.clear();
    for (TermId m : doc.annotations) {
      auto it = routes.find(m);
      if (it == routes.end()) continue;
      for (const auto& [v, bit] : it->second) {
        if (bits_of_view[v].empty()) touched.push_back(v);
        bits_of_view[v].push_back(bit);
      }
    }
    if (touched.empty()) continue;
    auto tracked_terms = table_->TrackedOf(doc.id - table_base_);
    uint32_t len = table_->doc_length(doc.id - table_base_);
    for (uint32_t v : touched) {
      BitSignature sig(views[v].def().num_columns());
      for (uint32_t bit : bits_of_view[v]) sig.Set(bit);
      views[v].AddDocument(sig, len, tracked_terms, doc.year);
      bits_of_view[v].clear();
    }
  }
}

}  // namespace csr
