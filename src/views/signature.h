#ifndef CSR_VIEWS_SIGNATURE_H_
#define CSR_VIEWS_SIGNATURE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace csr {

/// A fixed-width bitset keyed by a view's keyword-column positions. A view
/// tuple's group-by key (Section 4.1) is exactly "which of the view's
/// keyword columns are 1 for this partition" — a BitSignature. The paper's
/// observation that only non-empty tuples need storing (Section 4.3) is
/// realized by keeping rows in a hash map keyed by this signature.
class BitSignature {
 public:
  BitSignature() = default;

  /// Creates an all-zero signature with capacity for `num_bits` bits.
  explicit BitSignature(uint32_t num_bits)
      : words_((num_bits + 63) / 64, 0) {}

  void Set(uint32_t pos) { words_[pos >> 6] |= (1ULL << (pos & 63)); }
  bool Test(uint32_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  /// True if every bit set in `mask` is also set here (mask ⊆ this).
  /// Both signatures must have the same capacity.
  bool ContainsAll(const BitSignature& mask) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & mask.words_[i]) != mask.words_[i]) return false;
    }
    return true;
  }

  uint32_t PopCount() const {
    uint32_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint32_t>(__builtin_popcountll(w));
    return n;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  size_t num_words() const { return words_.size(); }

  uint64_t Hash() const {
    uint64_t h = 0x1B873593CC9E2D51ULL;
    for (uint64_t w : words_) h = HashCombine(h, w);
    return h;
  }

  bool operator==(const BitSignature& o) const { return words_ == o.words_; }

  /// Bytes this signature would occupy in a packed on-disk tuple key.
  uint64_t StorageBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Raw word access for persistence.
  const std::vector<uint64_t>& raw_words() const { return words_; }
  static BitSignature FromWords(std::vector<uint64_t> words) {
    BitSignature s;
    s.words_ = std::move(words);
    return s;
  }

 private:
  std::vector<uint64_t> words_;
};

struct BitSignatureHash {
  size_t operator()(const BitSignature& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace csr

#endif  // CSR_VIEWS_SIGNATURE_H_
