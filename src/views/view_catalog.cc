#include "views/view_catalog.h"

#include <algorithm>

namespace csr {

void ViewCatalog::Add(MaterializedView view) {
  uint32_t idx = static_cast<uint32_t>(views_.size());
  for (TermId m : view.def().keyword_columns) {
    by_term_[m].push_back(idx);
  }
  views_.push_back(std::move(view));
}

std::vector<MaterializedView> ViewCatalog::Release() {
  std::vector<MaterializedView> out = std::move(views_);
  views_.clear();
  by_term_.clear();
  return out;
}

const MaterializedView* ViewCatalog::FindBest(
    std::span<const TermId> context) const {
  int32_t idx = FindBestIndex(context);
  return idx < 0 ? nullptr : &views_[static_cast<size_t>(idx)];
}

int32_t ViewCatalog::FindBestIndex(std::span<const TermId> context) const {
  if (context.empty() || views_.empty()) return -1;

  // Candidates are views containing the rarest predicate of P.
  const std::vector<uint32_t>* candidates = nullptr;
  for (TermId m : context) {
    auto it = by_term_.find(m);
    if (it == by_term_.end()) return -1;  // some predicate in no view
    if (candidates == nullptr || it->second.size() < candidates->size()) {
      candidates = &it->second;
    }
  }

  int32_t best = -1;
  for (uint32_t idx : *candidates) {
    const MaterializedView& v = views_[idx];
    if (!v.def().Covers(context)) continue;
    if (best < 0 || v.NumTuples() < views_[static_cast<size_t>(best)]
                                        .NumTuples()) {
      best = static_cast<int32_t>(idx);
    }
  }
  return best;
}

const QuarantinedView* ViewCatalog::FindQuarantinedCovering(
    std::span<const TermId> context) const {
  for (const QuarantinedView& q : quarantined_) {
    if (std::includes(q.keyword_columns.begin(), q.keyword_columns.end(),
                      context.begin(), context.end())) {
      return &q;
    }
  }
  return nullptr;
}

uint64_t ViewCatalog::TotalStorageBytes() const {
  uint64_t total = 0;
  for (const auto& v : views_) total += v.StorageBytes();
  return total;
}

void ViewCatalog::CompactAll() {
  for (MaterializedView& v : views_) v.Compact();
}

uint64_t ViewCatalog::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& v : views_) total += v.NumTuples();
  return total;
}

}  // namespace csr
