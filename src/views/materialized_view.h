#ifndef CSR_VIEWS_MATERIALIZED_VIEW_H_
#define CSR_VIEWS_MATERIALIZED_VIEW_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/cost_model.h"
#include "util/types.h"
#include "views/signature.h"
#include "views/view_def.h"
#include "views/wide_table.h"

namespace csr {

/// Which parameter columns views carry. df columns (document count per
/// tracked keyword) are required by TF-IDF/BM25; tc columns (term count per
/// tracked keyword) additionally enable language-model ranking.
struct ViewParamOptions {
  bool track_df = true;
  bool track_tc = false;

  /// Section 7 time extension: when non-zero, the GROUP BY additionally
  /// partitions documents by floor(year / year_bucket_size), so year-range
  /// restrictions aligned to bucket boundaries are answerable from the
  /// view. 0 disables the time dimension.
  uint16_t year_bucket_size = 0;
};

/// A materialized view V_K (Section 4.1): GROUP BY K over the wide sparse
/// table, keeping one row per *non-empty* partition (Section 4.3). Each row
/// aggregates COUNT(*), SUM(len(d)), and per tracked keyword w the partial
/// df (and optionally tc).
///
/// Computing S_c(D_P) for P ⊆ K is a full scan of the rows, summing those
/// whose signature contains all bits of P (Theorem 4.2: O(ViewSize)).
class MaterializedView {
 public:
  MaterializedView(ViewDefinition def, ViewParamOptions options,
                   uint32_t num_tracked)
      : def_(std::move(def)), options_(options), num_tracked_(num_tracked) {}

  MaterializedView(const MaterializedView&) = delete;
  MaterializedView& operator=(const MaterializedView&) = delete;
  MaterializedView(MaterializedView&&) = default;
  MaterializedView& operator=(MaterializedView&&) = default;

  const ViewDefinition& def() const { return def_; }
  const ViewParamOptions& options() const { return options_; }

  /// Folds one document into its partition. `tracked_terms` is the
  /// document's (slot, tf) vector from the DocParamTable; `sig` must have
  /// been built against this view's definition. `year` is ignored unless
  /// the view has a time dimension.
  void AddDocument(const BitSignature& sig, uint32_t doc_length,
                   std::span<const std::pair<uint32_t, uint32_t>> tracked_terms,
                   uint16_t year = 0);

  /// Result of a statistics query against the view, aligned with the query
  /// keyword order. covered[i] is false when keyword i is not a tracked
  /// parameter column, in which case df[i]/tc[i] are meaningless and the
  /// caller must compute them at query time (Section 6.2 "Storage usage").
  struct StatsResult {
    uint64_t cardinality = 0;
    uint64_t total_length = 0;
    std::vector<uint64_t> df;
    std::vector<uint64_t> tc;
    std::vector<bool> covered;

    /// False when a year-range restriction could not be answered from
    /// this view (no time dimension, or range not aligned to bucket
    /// boundaries); the caller must fall back to the straightforward plan.
    bool range_answerable = true;
  };

  /// Computes S_c(D_P) by scanning the view. `context` must be sorted and
  /// satisfy Covers(context); violations return a zeroed result with all
  /// covered[i] = false. An active `range` is answered exactly iff the
  /// view has a time dimension and the range aligns to bucket boundaries.
  StatsResult ComputeStats(std::span<const TermId> context,
                           std::span<const TermId> keywords,
                           const TrackedKeywords& tracked,
                           CostCounters* cost = nullptr,
                           YearRange range = {}) const;

  /// True if an active year range aligns to this view's buckets (an
  /// inactive range is always answerable).
  bool RangeAnswerable(YearRange range) const;

  /// Number of non-empty tuples (the paper's ViewSize).
  size_t NumTuples() const {
    return compacted_ ? flat_.keys.size() : rows_.size();
  }

  /// Deep copy. MaterializedView is move-only (accidental copies of a
  /// multi-MB row store are bugs); segment flattening needs an explicit
  /// one to fold deltas into a fresh base catalog without mutating the
  /// published snapshot.
  MaterializedView Clone() const;

  /// Folds another view's rows into this one (tuple-wise sums of count,
  /// sum_len, and the df/tc parameter columns). Both views must share the
  /// same definition, options, and tracked-keyword table; this is the
  /// physical merge of a per-segment delta into its base view, and because
  /// every aggregate is an integer sum it reproduces exactly what a
  /// scratch build over the union of documents would have produced.
  void MergeFrom(const MaterializedView& other);

  /// Converts the hash-map row store into flat column arenas sorted by
  /// tuple key: one contiguous parameter block instead of two heap vectors
  /// per row. ComputeStats serves either representation identically (the
  /// scan is full either way); AddDocument on a compacted view lazily
  /// un-compacts first. Idempotent.
  void Compact();
  bool compacted() const { return compacted_; }

  /// Actual resident bytes of the row store (keys + aggregates + parameter
  /// columns + per-row container overhead when uncompacted).
  uint64_t MemoryBytes() const;

  /// Modeled on-disk storage: per tuple, the packed signature key plus
  /// 8-byte count/sum columns and 4-byte df/tc columns.
  uint64_t StorageBytes() const;

  /// Number of parameter columns (count + len + df/tc columns), matching
  /// the paper's "912 parameter columns" accounting.
  uint32_t NumParameterColumns() const {
    uint32_t cols = 2;
    if (options_.track_df) cols += num_tracked_;
    if (options_.track_tc) cols += num_tracked_;
    return cols;
  }

 private:
  friend class ViewSerializer;  // persistence (storage/snapshot.cc)

  struct Row {
    uint64_t count = 0;
    uint64_t sum_len = 0;
    std::vector<uint32_t> df;  // per tracked slot; empty unless track_df
    std::vector<uint32_t> tc;  // per tracked slot; empty unless track_tc
  };

  /// Group-by key: the keyword-column signature plus (when the view has a
  /// time dimension) the year bucket.
  struct TupleKey {
    BitSignature sig;
    uint16_t bucket = 0;

    bool operator==(const TupleKey& o) const {
      return bucket == o.bucket && sig == o.sig;
    }
  };
  struct TupleKeyHash {
    size_t operator()(const TupleKey& k) const {
      return static_cast<size_t>(HashCombine(k.sig.Hash(), k.bucket));
    }
  };

  /// Compacted row store: structure-of-arrays with df/tc packed row-major
  /// into one arena each (stride num_tracked_).
  struct FlatRows {
    std::vector<TupleKey> keys;
    std::vector<uint64_t> counts;
    std::vector<uint64_t> sum_lens;
    std::vector<uint32_t> df;
    std::vector<uint32_t> tc;
  };

  /// Rebuilds rows_ from flat_ (incremental maintenance needs keyed
  /// upserts).
  void Uncompact();

  ViewDefinition def_;
  ViewParamOptions options_;
  uint32_t num_tracked_;
  std::unordered_map<TupleKey, Row, TupleKeyHash> rows_;
  bool compacted_ = false;
  FlatRows flat_;
};

}  // namespace csr

#endif  // CSR_VIEWS_MATERIALIZED_VIEW_H_
