#ifndef CSR_VIEWS_SIZE_ESTIMATOR_H_
#define CSR_VIEWS_SIZE_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "corpus/generator.h"
#include "views/materialized_view.h"
#include "views/view_def.h"

namespace csr {

/// Estimates ViewSize(V_K) — the number of non-empty tuples — by mapping a
/// document sample onto the view's partitions and counting distinct
/// signatures (Section 4.3). Since distinct-count over a sample only grows
/// with more data, the estimate is a lower bound on the exact size; the
/// view-selection algorithms compensate by comparing against T_V with the
/// full sample.
///
/// Thread-safety: Estimate() and EstimateBytes() read only state FROZEN at
/// construction — the sampled documents' annotation sets are copied out of
/// the corpus up front, so concurrent appends (which grow corpus->docs and
/// can reallocate the vector out from under a reader) cannot race them.
/// The adaptive controller's background thread relies on this. Exact()
/// still walks the live corpus and keeps requiring exclusive access.
class ViewSizeEstimator {
 public:
  /// Draws a fixed document sample once and freezes its annotation sets;
  /// every Estimate call reuses them. sample_size >= |corpus| makes
  /// Estimate exact (over the corpus as of construction).
  ViewSizeEstimator(const Corpus* corpus, uint64_t seed,
                    uint32_t sample_size = 20000);

  /// Estimated number of non-empty (non-zero-signature) tuples of V_K.
  uint64_t Estimate(const ViewDefinition& def) const;

  /// Exact count over the full collection. Reads the live corpus;
  /// requires exclusive access (no concurrent appends).
  uint64_t Exact(const ViewDefinition& def) const;

  /// Modeled resident bytes per COMPACTED tuple for a view with
  /// `keyword_columns` columns under `options` tracking `num_tracked`
  /// slots. Mirrors MaterializedView::MemoryBytes of the flat row store:
  /// the tuple-key struct, the signature payload words (one 64-bit word
  /// per 64 keyword columns — the bitmap-block representation), the two
  /// 8-byte aggregate columns, and one 4-byte cell per tracked slot per
  /// enabled df/tc column. All arithmetic is 64-bit: with ~1k tracked
  /// slots one tuple already costs ~8 KiB, so a 32-bit product overflows
  /// past ~500k tuples. Cross-checked against actual Compact() bytes in
  /// the views test lane so the constants cannot silently rot.
  static uint64_t BytesPerTuple(uint32_t keyword_columns,
                                const ViewParamOptions& options,
                                uint32_t num_tracked);

  /// Lower-bound resident-byte estimate: Estimate(def) * BytesPerTuple.
  /// The adaptive controller uses this only as a pre-admission gate; its
  /// budget is accounted in actual MemoryBytes at install time. The
  /// per-segment delta path stores one partial tuple set per segment, so
  /// callers sizing a segmented build should multiply by the expected
  /// duplication factor themselves (the controller skips that: a lower
  /// bound only needs to reject views that cannot possibly fit).
  uint64_t EstimateBytes(const ViewDefinition& def,
                         const ViewParamOptions& options,
                         uint32_t num_tracked) const;

  size_t sample_size() const { return sample_annotations_.size(); }

 private:
  uint64_t CountDistinct(const ViewDefinition& def,
                         const std::vector<DocId>& docs) const;
  uint64_t CountDistinctFrozen(const ViewDefinition& def) const;

  const Corpus* corpus_;
  // The sampled documents' annotation sets, copied at construction (see
  // the class comment). Tens of annotations per document, so the frozen
  // copy costs a few hundred KB at the default 20k sample.
  std::vector<std::vector<TermId>> sample_annotations_;
  std::vector<DocId> all_docs_;
};

}  // namespace csr

#endif  // CSR_VIEWS_SIZE_ESTIMATOR_H_
