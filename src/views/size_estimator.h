#ifndef CSR_VIEWS_SIZE_ESTIMATOR_H_
#define CSR_VIEWS_SIZE_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "corpus/generator.h"
#include "views/view_def.h"

namespace csr {

/// Estimates ViewSize(V_K) — the number of non-empty tuples — by mapping a
/// document sample onto the view's partitions and counting distinct
/// signatures (Section 4.3). Since distinct-count over a sample only grows
/// with more data, the estimate is a lower bound on the exact size; the
/// view-selection algorithms compensate by comparing against T_V with the
/// full sample.
class ViewSizeEstimator {
 public:
  /// Draws a fixed document sample once; every Estimate call reuses it.
  /// sample_size >= |corpus| makes Estimate exact.
  ViewSizeEstimator(const Corpus* corpus, uint64_t seed,
                    uint32_t sample_size = 20000);

  /// Estimated number of non-empty (non-zero-signature) tuples of V_K.
  uint64_t Estimate(const ViewDefinition& def) const;

  /// Exact count over the full collection.
  uint64_t Exact(const ViewDefinition& def) const;

  size_t sample_size() const { return sample_.size(); }

 private:
  uint64_t CountDistinct(const ViewDefinition& def,
                         const std::vector<DocId>& docs) const;

  const Corpus* corpus_;
  std::vector<DocId> sample_;
  std::vector<DocId> all_docs_;
};

}  // namespace csr

#endif  // CSR_VIEWS_SIZE_ESTIMATOR_H_
