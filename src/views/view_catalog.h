#ifndef CSR_VIEWS_VIEW_CATALOG_H_
#define CSR_VIEWS_VIEW_CATALOG_H_

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "views/materialized_view.h"

namespace csr {

/// Record of a materialized view dropped at load time because its persisted
/// bytes were corrupt (or a decode fault was injected). The keyword columns
/// come from the snapshot's frame directory, so they are known even when
/// the view body itself is unreadable; query-time fallbacks use them to
/// explain why a context that *should* have been view-answerable degraded
/// to the straightforward plan.
struct QuarantinedView {
  TermIdSet keyword_columns;
  std::string reason;
};

/// The set of materialized views available at query time, with a matcher
/// that finds, for a context specification P, a usable view (P ⊆ K). When
/// several views are usable the smallest one (fewest tuples) is picked, as
/// in Section 6.3.
class ViewCatalog {
 public:
  ViewCatalog() = default;

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;
  ViewCatalog(ViewCatalog&&) = default;
  ViewCatalog& operator=(ViewCatalog&&) = default;

  void Add(MaterializedView view);

  /// Removes and returns all views (for incremental maintenance: update
  /// the rows, then Add them back). The catalog is left empty.
  std::vector<MaterializedView> Release();

  /// Smallest usable view for the sorted context P, or nullptr when no
  /// view covers P (the query then falls back to the straightforward
  /// plan).
  const MaterializedView* FindBest(std::span<const TermId> context) const;

  /// Index of the view FindBest would return, or -1. Per-segment view
  /// deltas are stored in catalog insertion order, so the index picked
  /// against the base catalog addresses the matching delta in every
  /// segment.
  int32_t FindBestIndex(std::span<const TermId> context) const;

  size_t size() const { return views_.size(); }
  const MaterializedView& view(size_t i) const { return views_[i]; }

  /// Records a view dropped during snapshot load. Quarantined views never
  /// match queries; they exist so degradation can be attributed.
  void RecordQuarantine(QuarantinedView q) {
    quarantined_.push_back(std::move(q));
  }
  const std::vector<QuarantinedView>& quarantined() const {
    return quarantined_;
  }

  /// A quarantined view that would have covered `context` (sorted), or
  /// nullptr. Used to mark query results degraded when the view they would
  /// have used was dropped at load time.
  const QuarantinedView* FindQuarantinedCovering(
      std::span<const TermId> context) const;

  uint64_t TotalStorageBytes() const;
  uint64_t TotalTuples() const;

  /// Compacts every view's row store (MaterializedView::Compact).
  /// Idempotent; incremental maintenance transparently un-compacts the
  /// views it touches.
  void CompactAll();

 private:
  std::vector<MaterializedView> views_;
  std::vector<QuarantinedView> quarantined_;
  // Predicate term -> indices of views whose K contains it.
  std::unordered_map<TermId, std::vector<uint32_t>> by_term_;
};

}  // namespace csr

#endif  // CSR_VIEWS_VIEW_CATALOG_H_
