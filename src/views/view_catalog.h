#ifndef CSR_VIEWS_VIEW_CATALOG_H_
#define CSR_VIEWS_VIEW_CATALOG_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "views/materialized_view.h"

namespace csr {

/// The set of materialized views available at query time, with a matcher
/// that finds, for a context specification P, a usable view (P ⊆ K). When
/// several views are usable the smallest one (fewest tuples) is picked, as
/// in Section 6.3.
class ViewCatalog {
 public:
  ViewCatalog() = default;

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;
  ViewCatalog(ViewCatalog&&) = default;
  ViewCatalog& operator=(ViewCatalog&&) = default;

  void Add(MaterializedView view);

  /// Removes and returns all views (for incremental maintenance: update
  /// the rows, then Add them back). The catalog is left empty.
  std::vector<MaterializedView> Release();

  /// Smallest usable view for the sorted context P, or nullptr when no
  /// view covers P (the query then falls back to the straightforward
  /// plan).
  const MaterializedView* FindBest(std::span<const TermId> context) const;

  size_t size() const { return views_.size(); }
  const MaterializedView& view(size_t i) const { return views_[i]; }

  uint64_t TotalStorageBytes() const;
  uint64_t TotalTuples() const;

 private:
  std::vector<MaterializedView> views_;
  // Predicate term -> indices of views whose K contains it.
  std::unordered_map<TermId, std::vector<uint32_t>> by_term_;
};

}  // namespace csr

#endif  // CSR_VIEWS_VIEW_CATALOG_H_
