#include "views/wide_table.h"

#include <algorithm>

namespace csr {

TrackedKeywords TrackedKeywords::Select(const InvertedIndex& content_index,
                                        uint64_t min_df, uint32_t cap) {
  // Gather qualifying terms, most frequent first, then cap.
  std::vector<std::pair<uint64_t, TermId>> qualifying;
  for (TermId t = 0; t < content_index.num_terms(); ++t) {
    uint64_t df = content_index.df(t);
    if (df >= min_df) qualifying.emplace_back(df, t);
  }
  std::sort(qualifying.begin(), qualifying.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (qualifying.size() > cap) qualifying.resize(cap);

  TrackedKeywords out;
  out.terms_.reserve(qualifying.size());
  for (const auto& [df, t] : qualifying) out.terms_.push_back(t);
  std::sort(out.terms_.begin(), out.terms_.end());
  for (uint32_t i = 0; i < out.terms_.size(); ++i) {
    out.slots_.emplace(out.terms_[i], i);
  }
  return out;
}

TrackedKeywords TrackedKeywords::FromTerms(std::vector<TermId> terms) {
  TrackedKeywords out;
  out.terms_ = std::move(terms);
  for (uint32_t i = 0; i < out.terms_.size(); ++i) {
    out.slots_.emplace(out.terms_[i], i);
  }
  return out;
}

DocParamTable DocParamTable::Build(const InvertedIndex& content_index,
                                   const TrackedKeywords& tracked) {
  DocParamTable table;
  uint64_t n = content_index.num_docs();
  table.doc_lengths_.assign(content_index.doc_lengths().begin(),
                            content_index.doc_lengths().end());

  // Count entries per doc, then fill CSR. Posting cursors (single-pass)
  // serve either index representation.
  std::vector<uint32_t> counts(n, 0);
  for (uint32_t slot = 0; slot < tracked.size(); ++slot) {
    for (PostingCursor c = content_index.cursor(tracked.TermAt(slot));
         c.valid() && !c.AtEnd(); c.Next()) {
      counts[c.doc()]++;
    }
  }
  table.offsets_.resize(n + 1, 0);
  for (uint64_t d = 0; d < n; ++d) {
    table.offsets_[d + 1] = table.offsets_[d] + counts[d];
  }
  table.entries_.resize(table.offsets_[n]);
  std::vector<uint64_t> fill(table.offsets_.begin(),
                             table.offsets_.end() - 1);
  // Slots are visited in increasing order, so per-doc entries end up sorted
  // by slot.
  for (uint32_t slot = 0; slot < tracked.size(); ++slot) {
    for (PostingCursor c = content_index.cursor(tracked.TermAt(slot));
         c.valid() && !c.AtEnd(); c.Next()) {
      table.entries_[fill[c.doc()]++] = {slot, c.tf()};
    }
  }
  return table;
}

}  // namespace csr
