#include "views/size_estimator.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/random.h"

namespace csr {

ViewSizeEstimator::ViewSizeEstimator(const Corpus* corpus, uint64_t seed,
                                     uint32_t sample_size)
    : corpus_(corpus) {
  SplitMix64 rng(seed);
  size_t n = corpus_->docs.size();
  std::vector<size_t> idx = SampleWithoutReplacement(n, sample_size, rng);
  sample_.reserve(idx.size());
  for (size_t i : idx) sample_.push_back(static_cast<DocId>(i));
  all_docs_.reserve(n);
  for (size_t i = 0; i < n; ++i) all_docs_.push_back(static_cast<DocId>(i));
}

uint64_t ViewSizeEstimator::CountDistinct(
    const ViewDefinition& def, const std::vector<DocId>& docs) const {
  // Signatures are summarized by a 64-bit hash of the sorted bit positions;
  // a collision would undercount by one tuple, which is harmless for the
  // thresholding these estimates feed.
  std::unordered_set<uint64_t> seen;
  for (DocId d : docs) {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    bool any = false;
    for (TermId m : corpus_->docs[d].annotations) {
      int32_t bit = def.BitOf(m);
      if (bit < 0) continue;
      any = true;
      h = HashCombine(h, static_cast<uint64_t>(bit));
    }
    if (any) seen.insert(h);
  }
  return seen.size();
}

uint64_t ViewSizeEstimator::Estimate(const ViewDefinition& def) const {
  return CountDistinct(def, sample_);
}

uint64_t ViewSizeEstimator::Exact(const ViewDefinition& def) const {
  return CountDistinct(def, all_docs_);
}

}  // namespace csr
