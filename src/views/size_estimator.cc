#include "views/size_estimator.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/random.h"

namespace csr {

ViewSizeEstimator::ViewSizeEstimator(const Corpus* corpus, uint64_t seed,
                                     uint32_t sample_size)
    : corpus_(corpus) {
  SplitMix64 rng(seed);
  size_t n = corpus_->docs.size();
  std::vector<size_t> idx = SampleWithoutReplacement(n, sample_size, rng);
  sample_annotations_.reserve(idx.size());
  for (size_t i : idx) sample_annotations_.push_back(corpus_->docs[i].annotations);
  all_docs_.reserve(n);
  for (size_t i = 0; i < n; ++i) all_docs_.push_back(static_cast<DocId>(i));
}

namespace {

// Signatures are summarized by a 64-bit hash of the sorted bit positions;
// a collision would undercount by one tuple, which is harmless for the
// thresholding these estimates feed.
inline bool HashAnnotations(const ViewDefinition& def,
                            const std::vector<TermId>& annotations,
                            uint64_t* out) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  bool any = false;
  for (TermId m : annotations) {
    int32_t bit = def.BitOf(m);
    if (bit < 0) continue;
    any = true;
    h = HashCombine(h, static_cast<uint64_t>(bit));
  }
  *out = h;
  return any;
}

}  // namespace

uint64_t ViewSizeEstimator::CountDistinct(
    const ViewDefinition& def, const std::vector<DocId>& docs) const {
  std::unordered_set<uint64_t> seen;
  uint64_t h = 0;
  for (DocId d : docs) {
    if (HashAnnotations(def, corpus_->docs[d].annotations, &h)) seen.insert(h);
  }
  return seen.size();
}

uint64_t ViewSizeEstimator::CountDistinctFrozen(
    const ViewDefinition& def) const {
  std::unordered_set<uint64_t> seen;
  uint64_t h = 0;
  for (const std::vector<TermId>& annotations : sample_annotations_) {
    if (HashAnnotations(def, annotations, &h)) seen.insert(h);
  }
  return seen.size();
}

uint64_t ViewSizeEstimator::Estimate(const ViewDefinition& def) const {
  return CountDistinctFrozen(def);
}

uint64_t ViewSizeEstimator::Exact(const ViewDefinition& def) const {
  return CountDistinct(def, all_docs_);
}

uint64_t ViewSizeEstimator::BytesPerTuple(uint32_t keyword_columns,
                                          const ViewParamOptions& options,
                                          uint32_t num_tracked) {
  // One payload word per 64 keyword columns, matching BitSignature's
  // bitmap blocks. The tuple key is the signature's inline header (a
  // std::vector) plus the year bucket, padded to the vector's alignment —
  // TupleKey itself is private to MaterializedView, so the cross-check
  // test pins this model against actual Compact() MemoryBytes.
  uint64_t sig_words = (static_cast<uint64_t>(keyword_columns) + 63) / 64;
  uint64_t key_bytes =
      (sizeof(BitSignature) + sizeof(uint16_t) + alignof(BitSignature) - 1) &
      ~(static_cast<uint64_t>(alignof(BitSignature)) - 1);
  uint64_t bytes = key_bytes + sig_words * sizeof(uint64_t) +
                   2 * sizeof(uint64_t);  // count + sum_len columns
  if (options.track_df) bytes += sizeof(uint32_t) * uint64_t{num_tracked};
  if (options.track_tc) bytes += sizeof(uint32_t) * uint64_t{num_tracked};
  return bytes;
}

uint64_t ViewSizeEstimator::EstimateBytes(const ViewDefinition& def,
                                          const ViewParamOptions& options,
                                          uint32_t num_tracked) const {
  return Estimate(def) *
         BytesPerTuple(def.num_columns(), options, num_tracked);
}

}  // namespace csr
