#ifndef CSR_VIEWS_VIEW_DEF_H_
#define CSR_VIEWS_VIEW_DEF_H_

#include <cstddef>
#include <algorithm>
#include <span>

#include "util/types.h"

namespace csr {

/// The definition of a materialized view V_K (Section 4.1): the set K of
/// keyword columns it groups by. Parameter columns (count, sum(len), df per
/// tracked keyword, optionally tc) are uniform across views and configured
/// on the builder, mirroring the paper's setup where every view carries the
/// same 912 parameter columns.
struct ViewDefinition {
  /// Sorted, deduplicated keyword (context-predicate) columns.
  TermIdSet keyword_columns;

  uint32_t num_columns() const {
    return static_cast<uint32_t>(keyword_columns.size());
  }

  /// Theorem 4.1 condition (2): V_K is usable for context P iff P ⊆ K.
  /// `context` must be sorted.
  bool Covers(std::span<const TermId> context) const {
    return std::includes(keyword_columns.begin(), keyword_columns.end(),
                         context.begin(), context.end());
  }

  /// Bit position of predicate `m` within this view's signature, or -1 if
  /// m ∉ K.
  int32_t BitOf(TermId m) const {
    auto it = std::lower_bound(keyword_columns.begin(), keyword_columns.end(),
                               m);
    if (it == keyword_columns.end() || *it != m) return -1;
    return static_cast<int32_t>(it - keyword_columns.begin());
  }
};

}  // namespace csr

#endif  // CSR_VIEWS_VIEW_DEF_H_
