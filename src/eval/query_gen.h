#ifndef CSR_EVAL_QUERY_GEN_H_
#define CSR_EVAL_QUERY_GEN_H_

#include <vector>

#include "engine/engine.h"
#include "engine/query.h"
#include "util/random.h"

namespace csr {

/// A generated workload query plus the size of its context.
struct WorkloadQuery {
  ContextQuery query;
  uint64_t context_size = 0;
};

/// Random context-sensitive queries in the manner of Section 6.3: keywords
/// are sampled from document titles, mapped to context predicates by the
/// ATM stand-in, and classified as large-context (>= T_C, answerable from
/// views) or small-context (< T_C, straightforward evaluation).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const ContextSearchEngine* engine, uint64_t seed)
      : engine_(engine), rng_(seed) {}

  /// Generates `n` queries with `num_keywords` title keywords each whose
  /// mapped context size falls in [min_size, max_size] (max_size == 0
  /// means unbounded). Gives up on a draw after max_attempts and returns
  /// however many queries were found.
  std::vector<WorkloadQuery> Generate(uint32_t n, uint32_t num_keywords,
                                      uint64_t min_size, uint64_t max_size,
                                      uint32_t max_attempts = 50000);

  /// When true, each mapped predicate is lifted to its top-level ancestor,
  /// producing the broad contexts of the Figure 7 experiment.
  void set_lift_to_roots(bool lift) { lift_to_roots_ = lift; }

 private:
  const ContextSearchEngine* engine_;
  SplitMix64 rng_;
  bool lift_to_roots_ = false;
};

}  // namespace csr

#endif  // CSR_EVAL_QUERY_GEN_H_
