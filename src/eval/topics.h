#ifndef CSR_EVAL_TOPICS_H_
#define CSR_EVAL_TOPICS_H_

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "util/result.h"
#include "util/types.h"

namespace csr {

/// A benchmark topic in the style of TREC Genomics 2007 (Section 6.1): a
/// keyword query, a context specification derived from it, and a gold
/// standard of relevant documents.
struct Topic {
  std::string name;                // "Q1", "Q2", ...
  std::vector<TermId> keywords;    // Q_k
  TermIdSet context;               // P
  std::vector<DocId> relevant;     // gold standard, sorted
  bool good_context_fit = true;    // planted to favour context ranking?
};

struct TopicPlanterConfig {
  uint64_t seed = 7;
  uint32_t num_topics = 30;

  /// Gold-standard relevant documents planted per topic.
  uint32_t relevant_per_topic = 25;

  /// In-context non-relevant documents that also match the query (the
  /// documents conventional idf mistakes for good answers).
  uint32_t distractors_per_topic = 60;

  /// Fraction of topics where the context specification fits the
  /// information need poorly, so conventional ranking wins slightly —
  /// mirroring the ~9/30 such topics in Figure 6.
  double poor_fit_fraction = 0.30;

  /// Contexts must contain at least this many documents.
  uint32_t min_context_size = 400;
};

/// Plants synthetic topics into a corpus (substituting for the TREC
/// Genomics gold standard; see DESIGN.md).
///
/// Each topic is built around the paper's motivating asymmetry: query term
/// X is topical in the context (common there, rare globally) while query
/// term Y is topical elsewhere (common globally, rare in the context).
/// Relevant documents are planted Y-heavy, distractors X-heavy; both match
/// the conjunctive query. Conventional ranking overweights X (high global
/// idf) and surfaces distractors; context-sensitive ranking overweights Y
/// (high context idf) and surfaces the relevant documents. Poor-fit topics
/// invert the planting with a mild margin.
///
/// Must run BEFORE the engine indexes the corpus: it mutates document
/// abstracts.
class TopicPlanter {
 public:
  explicit TopicPlanter(TopicPlanterConfig config) : config_(config) {}

  Result<std::vector<Topic>> Plant(Corpus& corpus) const;

 private:
  TopicPlanterConfig config_;
};

}  // namespace csr

#endif  // CSR_EVAL_TOPICS_H_
