#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace csr {

uint32_t RelevantInTopK(std::span<const SearchResultEntry> ranked,
                        const std::unordered_set<DocId>& relevant, size_t k) {
  uint32_t n = 0;
  size_t limit = std::min(k, ranked.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(ranked[i].doc)) ++n;
  }
  return n;
}

double PrecisionAtK(std::span<const SearchResultEntry> ranked,
                    const std::unordered_set<DocId>& relevant, size_t k) {
  if (k == 0) return 0.0;
  return static_cast<double>(RelevantInTopK(ranked, relevant, k)) /
         static_cast<double>(k);
}

double AveragePrecision(std::span<const SearchResultEntry> ranked,
                        const std::unordered_set<DocId>& relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  uint32_t hits = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.count(ranked[i].doc)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  size_t denom = std::min(relevant.size(), ranked.size());
  return denom == 0 ? 0.0 : sum / static_cast<double>(denom);
}

double NdcgAtK(std::span<const SearchResultEntry> ranked,
               const std::unordered_set<DocId>& relevant, size_t k) {
  size_t limit = std::min(k, ranked.size());
  double dcg = 0.0;
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(ranked[i].doc)) {
      dcg += 1.0 / std::log2(static_cast<double>(i + 2));
    }
  }
  size_t ideal_hits = std::min(k, relevant.size());
  double idcg = 0.0;
  for (size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i + 2));
  }
  return idcg == 0.0 ? 0.0 : dcg / idcg;
}

double ReciprocalRank(std::span<const SearchResultEntry> ranked,
                      const std::unordered_set<DocId>& relevant) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.count(ranked[i].doc)) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

}  // namespace csr
