#include "eval/topics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/random.h"

namespace csr {

namespace {

/// Overwrites abstract positions of doc: `heavy_count` positions with
/// `heavy` and one position with `light`, all positions distinct.
/// Replacement (not appending) keeps document length constant, so pivoted
/// length normalization cannot tell planted documents from natural ones;
/// distinct positions guarantee the document matches the conjunctive query.
void InjectByReplacement(Document& doc, TermId heavy, uint32_t heavy_count,
                         TermId light, SplitMix64& rng) {
  size_t n = doc.abstract_text.size();
  if (n < heavy_count + 1) return;
  std::vector<size_t> positions =
      SampleWithoutReplacement(n, heavy_count + 1, rng);
  for (uint32_t i = 0; i < heavy_count; ++i) {
    doc.abstract_text[positions[i]] = heavy;
  }
  doc.abstract_text[positions[heavy_count]] = light;
}

}  // namespace

Result<std::vector<Topic>> TopicPlanter::Plant(Corpus& corpus) const {
  if (config_.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be > 0");
  }

  // Concept -> member documents (annotation includes the concept).
  std::unordered_map<TermId, std::vector<DocId>> members;
  for (const Document& d : corpus.docs) {
    for (TermId m : d.annotations) members[m].push_back(d.id);
  }

  // Split qualifying concepts into a "small" band (search contexts: their
  // topical terms are globally rare) and a "big" band (sources of globally
  // common terms that are rare inside a small context).
  std::vector<std::pair<size_t, TermId>> by_size;
  for (const auto& [m, docs] : members) {
    if (docs.size() >= config_.min_context_size) {
      by_size.emplace_back(docs.size(), m);
    }
  }
  std::sort(by_size.begin(), by_size.end());
  if (by_size.size() < 4) {
    return Status::FailedPrecondition(
        "corpus has fewer than 4 concepts large enough for topics; lower "
        "min_context_size or enlarge the corpus");
  }
  std::vector<TermId> small_band, big_band;
  size_t split = by_size.size() / 2;
  for (size_t i = 0; i < by_size.size(); ++i) {
    if (i < split) {
      small_band.push_back(by_size[i].second);
    } else {
      big_band.push_back(by_size[i].second);
    }
  }

  SplitMix64 rng(config_.seed);
  std::unordered_set<DocId> used_docs;
  const uint32_t vocab = corpus.config.vocab_size;
  const uint32_t window = corpus.config.topical_window;
  const Ontology& ont = corpus.ontology;

  std::vector<Topic> topics;
  topics.reserve(config_.num_topics);
  double poor_quota = 0.0;
  for (uint32_t t = 0; t < config_.num_topics; ++t) {
    Topic topic;
    topic.name = "Q" + std::to_string(t + 1);

    // Deterministic quota: exactly ~poor_fit_fraction of topics are
    // poor-fit, spread across the sequence.
    poor_quota += config_.poor_fit_fraction;
    bool poor = poor_quota >= 1.0;
    if (poor) poor_quota -= 1.0;
    topic.good_context_fit = !poor;

    // c from the small band (so its topical term X is globally rare), c2
    // from the big band (so its topical term Y is globally common), with
    // no ancestry relation between them.
    TermId c = small_band[rng.NextBounded(small_band.size())];
    TermId c2 = c;
    for (int attempt = 0; attempt < 64; ++attempt) {
      TermId cand = big_band[rng.NextBounded(big_band.size())];
      if (cand != c && !ont.IsAncestor(cand, c) && !ont.IsAncestor(c, cand)) {
        c2 = cand;
        break;
      }
    }
    if (c2 == c) continue;  // no usable pair this draw; topic skipped

    TermId x = CorpusGenerator::ConceptTopicalTerm(c, 0, vocab, window);
    TermId y = CorpusGenerator::ConceptTopicalTerm(c2, 0, vocab, window);
    for (uint32_t r = 1; x == y && r < window; ++r) {
      y = CorpusGenerator::ConceptTopicalTerm(c2, r, vocab, window);
    }
    if (x == y) continue;

    // Documents already planted for another topic are off limits: a second
    // injection could overwrite the first topic's planted terms.
    std::vector<DocId> pool;
    for (DocId d : members[c]) {
      if (!used_docs.count(d)) pool.push_back(d);
    }
    Shuffle(pool, rng);
    uint32_t want = config_.relevant_per_topic + config_.distractors_per_topic;
    if (pool.size() < want) continue;
    for (uint32_t i = 0; i < want; ++i) used_docs.insert(pool[i]);

    // Good fit: relevant documents are heavy in Y (the context-rare term);
    // distractors are heavy in X (globally rare, so conventional idf loves
    // it — the paper's pancreas/leukemia inversion). Distractors get the
    // stronger dose so that conventional ranking reliably surfaces them
    // first (depressing its reciprocal rank, as in Figure 6c/d). Poor fit:
    // relevance correlates only weakly with X, so conventional ranking
    // wins by a small margin.
    if (topic.good_context_fit) {
      uint32_t heavy = 3 + static_cast<uint32_t>(rng.NextBounded(2));
      for (uint32_t i = 0; i < config_.relevant_per_topic; ++i) {
        Document& doc = corpus.docs[pool[i]];
        InjectByReplacement(doc, y, heavy, x, rng);
        topic.relevant.push_back(doc.id);
      }
      for (uint32_t i = 0; i < config_.distractors_per_topic; ++i) {
        Document& doc = corpus.docs[pool[config_.relevant_per_topic + i]];
        InjectByReplacement(doc, x, heavy + 2, y, rng);
      }
    } else {
      // Both groups carry both terms; relevant docs are slightly
      // X-heavier, distractors slightly Y-heavier.
      for (uint32_t i = 0; i < config_.relevant_per_topic; ++i) {
        Document& doc = corpus.docs[pool[i]];
        InjectByReplacement(doc, x, 3, y, rng);
        InjectByReplacement(doc, y, 1, x, rng);
        topic.relevant.push_back(doc.id);
      }
      for (uint32_t i = 0; i < config_.distractors_per_topic; ++i) {
        Document& doc = corpus.docs[pool[config_.relevant_per_topic + i]];
        InjectByReplacement(doc, y, 3, x, rng);
        InjectByReplacement(doc, x, 1, y, rng);
      }
    }
    std::sort(topic.relevant.begin(), topic.relevant.end());

    topic.keywords = {x, y};
    topic.context = {c};
    topics.push_back(std::move(topic));
  }

  if (topics.empty()) {
    return Status::FailedPrecondition(
        "no topics could be planted; corpus too small");
  }
  return topics;
}

}  // namespace csr
