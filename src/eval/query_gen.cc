#include "eval/query_gen.h"

#include <algorithm>

namespace csr {

std::vector<WorkloadQuery> WorkloadGenerator::Generate(uint32_t n,
                                                       uint32_t num_keywords,
                                                       uint64_t min_size,
                                                       uint64_t max_size,
                                                       uint32_t max_attempts) {
  std::vector<WorkloadQuery> out;
  const Corpus& corpus = engine_->corpus();
  const Ontology& ont = corpus.ontology;

  for (uint32_t attempt = 0; attempt < max_attempts && out.size() < n;
       ++attempt) {
    // Keywords from a random document's title (Section 6.3).
    const Document& doc = corpus.docs[rng_.NextBounded(corpus.docs.size())];
    if (doc.title.size() < num_keywords) continue;
    std::vector<TermId> keywords;
    for (uint32_t tries = 0;
         keywords.size() < num_keywords && tries < 8 * num_keywords;
         ++tries) {
      TermId w = doc.title[rng_.NextBounded(doc.title.size())];
      if (std::find(keywords.begin(), keywords.end(), w) == keywords.end()) {
        keywords.push_back(w);
      }
    }
    if (keywords.size() < num_keywords) continue;

    TermIdSet context = engine_->atm().MapQuery(keywords);
    if (context.empty()) continue;
    if (lift_to_roots_) {
      for (TermId& m : context) {
        while (ont.parent(m) != kInvalidTermId) m = ont.parent(m);
      }
      std::sort(context.begin(), context.end());
      context.erase(std::unique(context.begin(), context.end()),
                    context.end());
    }

    uint64_t size = engine_->ContextSize(context);
    if (size < min_size || (max_size != 0 && size > max_size)) continue;

    out.push_back(WorkloadQuery{ContextQuery{std::move(keywords),
                                             std::move(context)},
                                size});
  }
  return out;
}

}  // namespace csr
