#ifndef CSR_EVAL_METRICS_H_
#define CSR_EVAL_METRICS_H_

#include <cstddef>
#include <span>
#include <unordered_set>

#include "engine/query.h"
#include "util/types.h"

namespace csr {

/// Number of relevant documents among the top K ranked results — the
/// y-axis of Figures 6a/6b.
uint32_t RelevantInTopK(std::span<const SearchResultEntry> ranked,
                        const std::unordered_set<DocId>& relevant, size_t k);

/// Precision@K = RelevantInTopK / K.
double PrecisionAtK(std::span<const SearchResultEntry> ranked,
                    const std::unordered_set<DocId>& relevant, size_t k);

/// Reciprocal rank: 1 / (position of the first relevant result), 0 when no
/// relevant result is ranked — the y-axis of Figures 6c/6d.
double ReciprocalRank(std::span<const SearchResultEntry> ranked,
                      const std::unordered_set<DocId>& relevant);

/// Average precision: mean of precision@i over the ranks i of relevant
/// results, normalized by min(|relevant|, |ranked|). The building block of
/// MAP.
double AveragePrecision(std::span<const SearchResultEntry> ranked,
                        const std::unordered_set<DocId>& relevant);

/// Binary NDCG@K: DCG with gain 1 for relevant results, normalized by the
/// ideal ordering's DCG.
double NdcgAtK(std::span<const SearchResultEntry> ranked,
               const std::unordered_set<DocId>& relevant, size_t k);

}  // namespace csr

#endif  // CSR_EVAL_METRICS_H_
