#ifndef CSR_ENGINE_STATS_CACHE_H_
#define CSR_ENGINE_STATS_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "stats/statistics.h"
#include "util/hash.h"
#include "util/types.h"

namespace csr {

/// Thread-safe LRU cache for collection statistics keyed by
/// (context, keywords, year range). Context-sensitive workloads revisit the
/// same few contexts constantly (every GI researcher searches within
/// "digestive system"), and the statistics of a context are immutable for a
/// static collection — a natural cache.
///
/// Concurrency: the cache is striped into `num_shards` independent LRU
/// shards, each guarded by its own mutex. A key maps to exactly one shard
/// (by hash of its context signature), so concurrent queries over
/// *different* contexts proceed without contending on a lock, and
/// contention on the *same* context is limited to the microseconds of a
/// map lookup + splice. Get/Put/Clear and all counters are safe to call
/// from any number of threads; LRU order and capacity are maintained per
/// shard.
///
/// Counters (hits/misses/evictions) are maintained under the shard mutex,
/// so they are exact — hits() + misses() equals the number of Get calls
/// that reached a shard, even under concurrent hammering. Aggregate
/// accessors sum the shards and are monotonic but not a single atomic
/// snapshot across shards.
class StatsCache {
 public:
  /// Default shard count when the caller does not pick one.
  static constexpr size_t kDefaultShards = 8;

  /// capacity == 0 disables the cache (Get always misses, Put drops).
  /// `num_shards` == 0 picks kDefaultShards; tests pass 1 for a single
  /// deterministic LRU. The count — requested or defaulted — is clamped to
  /// [1, capacity] so no shard ends up with zero capacity. The total
  /// capacity is distributed across shards (each shard gets
  /// capacity/num_shards, remainder spread over the first shards), so the
  /// sum of shard capacities == capacity and every shard holds >= 1 entry.
  explicit StatsCache(size_t capacity, size_t num_shards = 0);

  StatsCache(const StatsCache&) = delete;
  StatsCache& operator=(const StatsCache&) = delete;

  /// Returns a copy of the cached stats, or nullopt on a miss. A copy —
  /// not a pointer — because a concurrent Put/eviction on the same shard
  /// may drop the entry the moment the shard lock is released.
  ///
  /// `epoch` is part of the key: the engine stamps every live-set publish
  /// (append, seal, merge) with a new epoch, so a query can only hit
  /// entries computed against the exact collection snapshot it is serving
  /// from — a Put racing an append can never poison post-append queries.
  /// Entries from dead epochs age out through normal LRU pressure.
  std::optional<CollectionStats> Get(std::span<const TermId> context,
                                     std::span<const TermId> keywords,
                                     YearRange range = {},
                                     uint64_t epoch = 0);

  void Put(std::span<const TermId> context,
           std::span<const TermId> keywords, YearRange range,
           CollectionStats stats, uint64_t epoch = 0);

  void Put(std::span<const TermId> context,
           std::span<const TermId> keywords, CollectionStats stats) {
    Put(context, keywords, YearRange{}, std::move(stats));
  }

  /// Entries currently cached, summed over shards.
  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return num_shards_; }

  // Per-shard introspection (tests, telemetry).
  size_t shard_size(size_t shard) const;
  size_t shard_capacity(size_t shard) const;
  uint64_t shard_hits(size_t shard) const;
  uint64_t shard_misses(size_t shard) const;
  uint64_t shard_evictions(size_t shard) const;

  void Clear();

 private:
  static TermIdSet MakeKey(std::span<const TermId> context,
                           std::span<const TermId> keywords,
                           YearRange range, uint64_t epoch);

  using Entry = std::pair<TermIdSet, CollectionStats>;

  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<TermIdSet, std::list<Entry>::iterator, TermIdSetHash>
        map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Key -> shard. Uses the upper bits of the key hash so the shard choice
  /// stays decorrelated from the in-shard bucket choice (which uses the
  /// low bits).
  size_t ShardIndex(const TermIdSet& key) const {
    uint64_t h = HashTermIds(key);
    return static_cast<size_t>((h >> 32) ^ h) % num_shards_;
  }

  size_t capacity_;
  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace csr

#endif  // CSR_ENGINE_STATS_CACHE_H_
