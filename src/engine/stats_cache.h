#ifndef CSR_ENGINE_STATS_CACHE_H_
#define CSR_ENGINE_STATS_CACHE_H_

#include <cstddef>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>

#include "stats/statistics.h"
#include "util/hash.h"
#include "util/types.h"

namespace csr {

/// LRU cache for collection statistics keyed by (context, keywords).
/// Context-sensitive workloads revisit the same few contexts constantly
/// (every GI researcher searches within "digestive system"), and the
/// statistics of a context are immutable for a static collection — a
/// natural cache.
///
/// Not thread-safe; the engine guards it per its own threading contract
/// (one Search at a time).
class StatsCache {
 public:
  /// capacity == 0 disables the cache (Get always misses, Put drops).
  explicit StatsCache(size_t capacity) : capacity_(capacity) {}

  StatsCache(const StatsCache&) = delete;
  StatsCache& operator=(const StatsCache&) = delete;

  /// Returns the cached stats or nullptr. The pointer is invalidated by
  /// the next Put.
  const CollectionStats* Get(std::span<const TermId> context,
                             std::span<const TermId> keywords,
                             YearRange range = {});

  void Put(std::span<const TermId> context,
           std::span<const TermId> keywords, YearRange range,
           CollectionStats stats);

  void Put(std::span<const TermId> context,
           std::span<const TermId> keywords, CollectionStats stats) {
    Put(context, keywords, YearRange{}, std::move(stats));
  }

  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  void Clear();

 private:
  static TermIdSet MakeKey(std::span<const TermId> context,
                           std::span<const TermId> keywords,
                           YearRange range);

  using Entry = std::pair<TermIdSet, CollectionStats>;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<TermIdSet, std::list<Entry>::iterator, TermIdSetHash>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace csr

#endif  // CSR_ENGINE_STATS_CACHE_H_
