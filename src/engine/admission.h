#ifndef CSR_ENGINE_ADMISSION_H_
#define CSR_ENGINE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace csr {

/// Per-tenant admission control + adaptive concurrency for the query
/// executor (DESIGN.md §13).
///
/// The executor's single bounded FIFO treats all traffic as one class: a
/// bursty tenant fills the queue and every other tenant eats its latency
/// or its kResourceExhausted rejections. This module replaces it with
/// weighted fair queueing across per-tenant queues — each tenant gets a
/// bounded queue and a weight, and dispatch order follows virtual-time
/// finish tags, so under saturation tenant i receives ~w_i / Σw of the
/// service no matter how hard anyone else pushes.
///
/// On top sits an AIMD concurrency limiter: when a latency SLO is
/// configured, the controller watches the windowed p99 of end-to-end
/// latency and multiplicatively shrinks the dispatch concurrency when the
/// SLO is violated (queueing delay, not parallelism, is what blows p99
/// past saturation), probing back up additively while the SLO holds.

/// One traffic class.
struct TenantConfig {
  std::string name;
  /// Relative service share under saturation (> 0).
  double weight = 1.0;
  /// Bound on queued-but-not-started queries for this tenant. A full
  /// tenant queue rejects with kResourceExhausted + retry_after_ms.
  size_t queue_capacity = 64;
};

struct AdmissionConfig {
  /// Traffic classes. Empty configures a single "default" tenant, which
  /// reproduces the old single-queue FIFO behavior exactly (one queue,
  /// FIFO tags, fixed concurrency = worker count).
  std::vector<TenantConfig> tenants;

  /// End-to-end (queue wait + execution) p99 target in milliseconds for
  /// the adaptive limiter; 0 disables adaptation (fixed concurrency).
  double slo_ms = 0.0;

  /// Clamp range for the adaptive concurrency limit. max_concurrency 0
  /// means "number of worker threads".
  uint32_t min_concurrency = 1;
  uint32_t max_concurrency = 0;

  /// Multiplicative decrease applied to the limit on an SLO violation.
  double decrease_factor = 0.7;

  /// Completions per AIMD evaluation window.
  uint32_t adapt_interval = 32;
};

/// Point-in-time copy of one tenant's admission state.
struct TenantSnapshot {
  std::string name;
  double weight = 1.0;
  size_t queue_capacity = 0;
  size_t depth = 0;       // queued right now
  uint64_t admitted = 0;  // accepted into the queue
  uint64_t rejected = 0;  // refused, tenant queue full
  uint64_t completed = 0;
  uint64_t shed = 0;      // dispatched but past deadline (engine shed it)
};

/// Point-in-time copy of the whole controller (shell `.qos`, metrics
/// callback, tests).
struct AdmissionSnapshot {
  std::vector<TenantSnapshot> tenants;
  uint32_t limit = 0;     // current dispatch concurrency limit
  uint32_t inflight = 0;  // dispatched, not yet completed
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t limit_increases = 0;
  uint64_t limit_decreases = 0;
  double window_p99_ms = 0.0;  // last AIMD window's observed p99
  double slo_ms = 0.0;
};

/// Weighted-fair admission queue + AIMD concurrency limiter.
///
/// NOT internally synchronized. The owner (QueryExecutor) serializes every
/// call under its queue mutex — admission decisions are already inside the
/// enqueue/dequeue critical sections, and a second lock here would only
/// add a lock-order edge to audit. The one exception is the latency
/// histogram feeding the limiter, which is relaxed-atomic internally, but
/// it too is only touched from locked methods.
///
/// Virtual-time WFQ: the controller keeps a global virtual clock V. A
/// query admitted to tenant t gets finish tag
///     f = max(V, t.last_finish) + 1 / t.weight,
/// and dispatch always picks the non-empty tenant whose head tag is
/// smallest, advancing V to that tag. Backlogged tenants therefore
/// accumulate tags at rate 1/weight and are served proportionally; a
/// tenant returning from idle starts at the current V (no banked credit).
class AdmissionController {
 public:
  /// `num_threads` is the worker count — the default/maximum concurrency.
  AdmissionController(AdmissionConfig config, uint32_t num_threads);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  size_t num_tenants() const { return tenants_.size(); }

  /// Resolves a tenant by name; unknown or empty names map to tenant 0
  /// (the first configured tenant, or "default").
  size_t TenantIndex(std::string_view name) const;

  const TenantConfig& tenant_config(size_t t) const {
    return tenants_[t].config;
  }

  /// Room in tenant t's queue right now (blocking-enqueue predicate).
  bool CanAdmit(size_t t) const;

  /// Admits one query to tenant t: OK (tag pushed, depth grown) or
  /// kResourceExhausted carrying a retry_after_ms hint sized from the
  /// tenant's backlog and the current service rate.
  Status TryAdmit(size_t t);

  /// Any tenant has queued work.
  bool HasRunnable() const;

  /// Queued work exists AND the concurrency limit has room.
  bool CanDispatch() const;

  /// Pops the WFQ-next queued query (precondition: HasRunnable()) and
  /// counts it in-flight. Returns the tenant whose queue the owner must
  /// pop. `ignore_limit` exists for shutdown drain.
  size_t BeginDispatch();

  /// Completes an in-flight query: frees its concurrency slot, records
  /// the end-to-end latency into the AIMD window, and steps the limiter
  /// every adapt_interval completions. `shed` marks a query the engine
  /// refused past-deadline (it still occupied a slot).
  void OnComplete(size_t t, double e2e_ms, bool shed);

  uint32_t limit() const { return limit_; }
  uint32_t inflight() const { return inflight_; }
  size_t depth(size_t t) const { return tenants_[t].finish_tags.size(); }
  size_t total_depth() const;

  AdmissionSnapshot snapshot() const;

 private:
  struct Tenant {
    TenantConfig config;
    std::deque<double> finish_tags;  // one per queued query, ascending
    double last_finish = 0.0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
  };

  void StepLimiter();

  AdmissionConfig config_;
  std::vector<Tenant> tenants_;
  double virtual_time_ = 0.0;

  uint32_t limit_;
  uint32_t max_limit_;
  uint32_t inflight_ = 0;
  uint64_t completed_ = 0;
  uint64_t shed_ = 0;
  uint64_t limit_increases_ = 0;
  uint64_t limit_decreases_ = 0;
  double ewma_e2e_ms_ = 0.0;  // service-time estimate for retry hints
  double window_p99_ms_ = 0.0;

  // AIMD latency window: always observed (independent of the engine's
  // metrics_enabled switch, so turning metrics off cannot starve the
  // limiter). p99 is computed from bucket-count deltas between windows.
  Histogram window_hist_;
  std::vector<uint64_t> window_base_;  // bucket counts at window start
  uint64_t window_completed_ = 0;      // completions in current window
};

}  // namespace csr

#endif  // CSR_ENGINE_ADMISSION_H_
