#ifndef CSR_ENGINE_EXECUTOR_H_
#define CSR_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/admission.h"
#include "engine/engine.h"
#include "engine/query.h"
#include "util/result.h"
#include "util/timer.h"

namespace csr {

struct ExecutorConfig {
  /// Worker threads. 0 picks std::thread::hardware_concurrency() (min 1).
  uint32_t num_threads = 0;

  /// Queue bound for the default tenant when `admission.tenants` is empty
  /// (the single-tenant compatibility path). With explicit tenants, each
  /// tenant's own queue_capacity governs instead.
  size_t queue_capacity = 256;

  /// Per-tenant admission control + adaptive concurrency (DESIGN.md §13).
  /// Default (no tenants, slo_ms 0) reproduces single-queue FIFO serving
  /// at full worker concurrency.
  AdmissionConfig admission;
};

/// Point-in-time executor telemetry. Counters are cumulative since
/// construction; submitted == completed + queue_depth +
/// currently-executing (rejected tasks never enter the queue).
///
/// Synchronization contract (torn-read audit, PR 5): every field —
/// including the multi-word doubles and max-trackers — is mutated only
/// under QueryExecutor::mu_, and every read path goes through the locked
/// copy-out in QueryExecutor::metrics() (the registry sample callback
/// included). Reading a field of a live executor's struct without mu_ is a
/// data race: `queue_wait_ms_total += x` and `max_queue_depth = max(...)`
/// are read-modify-writes, so an unlocked reader can observe a torn or
/// mid-update value. The admission controller follows the same contract
/// (every call under mu_, copy-out via admission()).
struct ExecutorMetrics {
  uint64_t submitted = 0;   // accepted into a tenant queue
  uint64_t rejected = 0;    // refused with kResourceExhausted (queue full)
  uint64_t completed = 0;   // promise fulfilled (ok or error)
  size_t queue_depth = 0;   // tasks waiting right now, all tenants
  size_t max_queue_depth = 0;
  double queue_wait_ms_total = 0;  // summed over completed tasks
  double queue_wait_ms_max = 0;
  double exec_ms_total = 0;  // summed Search wall time, completed tasks
};

/// A fixed-size thread pool serving ContextSearchEngine::Search under the
/// engine's threading contract (Search is safe concurrently; mutations
/// need exclusive access — do not Append/Install/Materialize while an
/// executor is attached and live).
///
/// Two entry points:
///  - SubmitSearch: non-blocking; returns a future. When the caller's
///    tenant queue is at capacity the future is already resolved with
///    kResourceExhausted carrying a retry_after_ms backoff hint, so
///    callers get immediate backpressure, never an unbounded buffer.
///  - SearchBatch: convenience for offline/bench workloads; blocks for
///    queue space, preserves input order in the returned vector, and only
///    returns when every query has finished.
///
/// Scheduling: queued queries sit in per-tenant bounded queues and are
/// dispatched in weighted-fair order (AdmissionController); concurrent
/// dispatch is capped by the AIMD limiter when an SLO is configured.
///
/// Deadlines: each task records its enqueue time, and the measured queue
/// wait is passed to Search as `elapsed_ms`, so EngineConfig::deadline_ms
/// bounds end-to-end latency (queue wait + execution). A query whose
/// deadline expires while still queued is shed with kDeadlineExceeded —
/// the engine's shed path is the single authority for that decision; the
/// executor only counts the outcome.
///
/// Destruction/Shutdown drains: queued tasks still execute (the drain
/// ignores the concurrency limit), then workers join. Submissions after
/// Shutdown resolve to kUnavailable — the component is down, not
/// overloaded, so callers must not interpret it as backpressure.
class QueryExecutor {
 public:
  /// `engine` must outlive the executor.
  explicit QueryExecutor(const ContextSearchEngine* engine,
                         ExecutorConfig config = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues one query for `tenant` (empty = default tenant). Never
  /// blocks: a full tenant queue (or a shut-down executor) yields an
  /// already-resolved future carrying the typed error.
  std::future<Result<SearchResult>> SubmitSearch(ContextQuery query,
                                                 EvaluationMode mode,
                                                 std::string_view tenant = {});

  /// Runs the whole batch through the pool and returns results in input
  /// order. Blocks for queue space (no kResourceExhausted rejections) and
  /// for completion.
  std::vector<Result<SearchResult>> SearchBatch(
      std::span<const ContextQuery> queries, EvaluationMode mode,
      std::string_view tenant = {});

  /// Stops accepting work, drains the queues, joins workers. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  ExecutorMetrics metrics() const;
  /// Locked copy-out of the admission state (per-tenant depths/counters,
  /// concurrency limit, shed counts). Basis of the admission.* metrics
  /// and the shell's `.qos`.
  AdmissionSnapshot admission() const;
  size_t queue_depth() const;
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }
  const ContextSearchEngine& engine() const { return *engine_; }

 private:
  struct Task {
    ContextQuery query;
    EvaluationMode mode;
    std::promise<Result<SearchResult>> promise;
    WallTimer queued;  // started at enqueue; read at dequeue = queue wait
  };

  static uint32_t ResolveThreads(const ExecutorConfig& config);

  /// Shared enqueue path; `block` selects SearchBatch (wait for space) vs
  /// SubmitSearch (reject) semantics.
  std::future<Result<SearchResult>> Enqueue(ContextQuery query,
                                            EvaluationMode mode,
                                            std::string_view tenant,
                                            bool block);
  void WorkerLoop();

  const ContextSearchEngine* engine_;
  ExecutorConfig config_;
  std::vector<std::thread> workers_;

  // Observability: per-event latency histograms (cached instrument
  // pointers, relaxed-atomic updates outside mu_) plus a sample callback
  // that exports the locked ExecutorMetrics/AdmissionSnapshot copy-outs
  // under executor.* / admission.* names. The callback handle is released
  // in Shutdown — the registry guarantees the callback is not running once
  // removal returns, so a shut-down executor can be destroyed safely.
  Histogram* queue_wait_hist_ = nullptr;
  Histogram* exec_hist_ = nullptr;
  Histogram* e2e_hist_ = nullptr;
  uint64_t metrics_callback_ = 0;

  mutable std::mutex mu_;
  std::mutex join_mu_;                 // serializes Shutdown callers
  std::condition_variable not_empty_;  // signalled on push, completion,
                                       // and shutdown (dispatch predicate)
  std::condition_variable not_full_;   // signalled on dispatch
  std::vector<std::deque<Task>> tenant_queues_;  // parallel to admission_
  AdmissionController admission_;      // guarded by mu_
  bool shutdown_ = false;
  ExecutorMetrics metrics_;  // guarded by mu_; queue_depth derived
};

}  // namespace csr

#endif  // CSR_ENGINE_EXECUTOR_H_
