#ifndef CSR_ENGINE_EXECUTOR_H_
#define CSR_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/query.h"
#include "util/result.h"
#include "util/timer.h"

namespace csr {

struct ExecutorConfig {
  /// Worker threads. 0 picks std::thread::hardware_concurrency() (min 1).
  uint32_t num_threads = 0;

  /// Bound on queued-but-not-started queries. A full queue rejects
  /// SubmitSearch with kResourceExhausted (backpressure) instead of
  /// buffering unboundedly; SearchBatch blocks for space instead.
  size_t queue_capacity = 256;
};

/// Point-in-time executor telemetry. Counters are cumulative since
/// construction; submitted == completed + rejected + queue_depth +
/// currently-executing.
///
/// Synchronization contract (torn-read audit, PR 5): every field —
/// including the multi-word doubles and max-trackers — is mutated only
/// under QueryExecutor::mu_, and every read path goes through the locked
/// copy-out in QueryExecutor::metrics() (the registry sample callback
/// included). Reading a field of a live executor's struct without mu_ is a
/// data race: `queue_wait_ms_total += x` and `max_queue_depth = max(...)`
/// are read-modify-writes, so an unlocked reader can observe a torn or
/// mid-update value.
struct ExecutorMetrics {
  uint64_t submitted = 0;   // accepted into the queue
  uint64_t rejected = 0;    // refused with kResourceExhausted (queue full)
  uint64_t completed = 0;   // promise fulfilled (ok or error)
  size_t queue_depth = 0;   // tasks waiting right now
  size_t max_queue_depth = 0;
  double queue_wait_ms_total = 0;  // summed over completed tasks
  double queue_wait_ms_max = 0;
  double exec_ms_total = 0;  // summed Search wall time, completed tasks
};

/// A fixed-size thread pool serving ContextSearchEngine::Search under the
/// engine's threading contract (Search is safe concurrently; mutations
/// need exclusive access — do not Append/Install/Materialize while an
/// executor is attached and live).
///
/// Two entry points:
///  - SubmitSearch: non-blocking; returns a future. When the queue is at
///    capacity the future is already resolved with kResourceExhausted so
///    callers get immediate backpressure, never an unbounded buffer.
///  - SearchBatch: convenience for offline/bench workloads; blocks for
///    queue space, preserves input order in the returned vector, and only
///    returns when every query has finished.
///
/// Deadlines: each task records its enqueue time, and the measured queue
/// wait is passed to Search as `elapsed_ms`, so EngineConfig::deadline_ms
/// bounds end-to-end latency (queue wait + execution). A query whose
/// deadline expires while still queued is shed with kDeadlineExceeded.
///
/// Destruction/Shutdown drains: queued tasks still execute, then workers
/// join. Submissions after Shutdown resolve to kFailedPrecondition.
class QueryExecutor {
 public:
  /// `engine` must outlive the executor.
  explicit QueryExecutor(const ContextSearchEngine* engine,
                         ExecutorConfig config = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues one query. Never blocks: a full queue (or a shut-down
  /// executor) yields an already-resolved future carrying the typed error.
  std::future<Result<SearchResult>> SubmitSearch(ContextQuery query,
                                                 EvaluationMode mode);

  /// Runs the whole batch through the pool and returns results in input
  /// order. Blocks for queue space (no kResourceExhausted rejections) and
  /// for completion.
  std::vector<Result<SearchResult>> SearchBatch(
      std::span<const ContextQuery> queries, EvaluationMode mode);

  /// Stops accepting work, drains the queue, joins workers. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  ExecutorMetrics metrics() const;
  size_t queue_depth() const;
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }
  const ContextSearchEngine& engine() const { return *engine_; }

 private:
  struct Task {
    ContextQuery query;
    EvaluationMode mode;
    std::promise<Result<SearchResult>> promise;
    WallTimer queued;  // started at enqueue; read at dequeue = queue wait
  };

  /// Shared enqueue path; `block` selects SearchBatch (wait for space) vs
  /// SubmitSearch (reject) semantics.
  std::future<Result<SearchResult>> Enqueue(ContextQuery query,
                                            EvaluationMode mode, bool block);
  void WorkerLoop();

  const ContextSearchEngine* engine_;
  ExecutorConfig config_;
  std::vector<std::thread> workers_;

  // Observability: per-event latency histograms (cached instrument
  // pointers, relaxed-atomic updates outside mu_) plus a sample callback
  // that exports the locked ExecutorMetrics copy-out under executor.*
  // names. The callback handle is released in Shutdown — the registry
  // guarantees the callback is not running once removal returns, so a
  // shut-down executor can be destroyed safely.
  Histogram* queue_wait_hist_ = nullptr;
  Histogram* exec_hist_ = nullptr;
  uint64_t metrics_callback_ = 0;

  mutable std::mutex mu_;
  std::mutex join_mu_;                 // serializes Shutdown callers
  std::condition_variable not_empty_;  // signalled on push and shutdown
  std::condition_variable not_full_;   // signalled on pop
  std::deque<Task> queue_;
  bool shutdown_ = false;
  ExecutorMetrics metrics_;  // guarded by mu_; queue_depth derived
};

}  // namespace csr

#endif  // CSR_ENGINE_EXECUTOR_H_
