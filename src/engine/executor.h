#ifndef CSR_ENGINE_EXECUTOR_H_
#define CSR_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/admission.h"
#include "engine/engine.h"
#include "engine/query.h"
#include "index/codec.h"
#include "util/result.h"
#include "util/timer.h"

namespace csr {

/// Staged pipeline execution (DESIGN.md §16). Off by default: the legacy
/// one-query-per-worker pool keeps its exact semantics. When enabled,
/// each query flows parse/plan -> intersect -> score/top-k through
/// bounded inter-stage queues, and the intersect stage batches in-flight
/// queries that share terms so each posting block is decoded once per
/// batch (per-batch DecodedBlockArena).
struct PipelineConfig {
  bool enabled = false;

  /// Per-stage worker pools. intersect_workers == 0 picks the executor's
  /// resolved num_threads (the intersect stage does the posting-scan
  /// work, so it gets the pool the legacy path would have had).
  uint32_t parse_workers = 1;
  uint32_t intersect_workers = 0;
  uint32_t score_workers = 1;

  /// Bound of each inter-stage queue. A full downstream queue blocks the
  /// upstream stage (backpressure), which in turn keeps admission queues
  /// full and lets per-tenant rejection engage.
  size_t stage_queue_capacity = 64;

  /// Most queries one intersect batch may group (>= 1). Queries join a
  /// batch only when they share at least one term with the batch head.
  size_t max_batch = 8;

  /// Byte bound of each intersect worker's decoded-block arena. Past the
  /// bound new blocks decode privately (correct, just uncached), so batch
  /// memory stays bounded however hot the shared terms are.
  size_t arena_bytes = DecodedBlockArena::kDefaultMaxBytes;
};

struct ExecutorConfig {
  /// Worker threads. 0 picks std::thread::hardware_concurrency() (min 1).
  uint32_t num_threads = 0;

  /// Queue bound for the default tenant when `admission.tenants` is empty
  /// (the single-tenant compatibility path). With explicit tenants, each
  /// tenant's own queue_capacity governs instead.
  size_t queue_capacity = 256;

  /// Per-tenant admission control + adaptive concurrency (DESIGN.md §13).
  /// Default (no tenants, slo_ms 0) reproduces single-queue FIFO serving
  /// at full worker concurrency.
  AdmissionConfig admission;

  /// Staged pipeline + cross-query posting-scan batching (DESIGN.md §16).
  PipelineConfig pipeline;
};

/// Point-in-time executor telemetry. Counters are cumulative since
/// construction; submitted == completed + queue_depth +
/// currently-executing (rejected tasks never enter the queue).
///
/// Synchronization contract (torn-read audit, PR 5): every field —
/// including the multi-word doubles and max-trackers — is mutated only
/// under QueryExecutor::mu_, and every read path goes through the locked
/// copy-out in QueryExecutor::metrics() (the registry sample callback
/// included). Reading a field of a live executor's struct without mu_ is a
/// data race: `queue_wait_ms_total += x` and `max_queue_depth = max(...)`
/// are read-modify-writes, so an unlocked reader can observe a torn or
/// mid-update value. The admission controller follows the same contract
/// (every call under mu_, copy-out via admission()).
struct ExecutorMetrics {
  uint64_t submitted = 0;   // accepted into a tenant queue
  uint64_t rejected = 0;    // refused with kResourceExhausted (queue full)
  uint64_t completed = 0;   // promise fulfilled (ok or error)
  size_t queue_depth = 0;   // tasks waiting right now, all tenants
  size_t max_queue_depth = 0;
  double queue_wait_ms_total = 0;  // summed over completed tasks
  double queue_wait_ms_max = 0;
  double exec_ms_total = 0;  // summed Search wall time, completed tasks
};

/// Point-in-time telemetry for one pipeline stage. `queue_depth` is the
/// stage's INPUT queue (for parse that is the admission queues);
/// `busy_ms_total` sums the stage's time actually executing work, so
/// occupancy = busy_ms_total / (uptime_ms * workers).
struct PipelineStageMetrics {
  uint32_t workers = 0;
  uint64_t processed = 0;
  size_t queue_depth = 0;
  size_t max_queue_depth = 0;
  double queue_wait_ms_total = 0;
  double busy_ms_total = 0;
};

/// Locked copy-out of the staged pipeline's state; all-zero (enabled ==
/// false) when the executor runs the legacy one-query-per-worker pool.
struct PipelineMetrics {
  bool enabled = false;
  double uptime_ms = 0;
  PipelineStageMetrics parse;
  PipelineStageMetrics intersect;
  PipelineStageMetrics score;

  uint64_t batches = 0;          // intersect batches formed
  uint64_t batched_queries = 0;  // queries that shared a batch (size >= 2)
  size_t max_batch = 0;          // largest batch observed
  /// batch_size_counts[n] = number of batches of exactly n queries
  /// (index 0 unused).
  std::vector<uint64_t> batch_size_counts;
  uint64_t arena_hits = 0;    // block decodes avoided via batch arenas
  uint64_t arena_misses = 0;  // block decodes the arenas performed
};

/// A fixed-size thread pool serving ContextSearchEngine::Search under the
/// engine's threading contract (Search is safe concurrently; mutations
/// need exclusive access — do not Append/Install/Materialize while an
/// executor is attached and live).
///
/// Two entry points:
///  - SubmitSearch: non-blocking; returns a future. When the caller's
///    tenant queue is at capacity the future is already resolved with
///    kResourceExhausted carrying a retry_after_ms backoff hint, so
///    callers get immediate backpressure, never an unbounded buffer.
///  - SearchBatch: convenience for offline/bench workloads; blocks for
///    queue space, preserves input order in the returned vector, and only
///    returns when every query has finished.
///
/// Scheduling: queued queries sit in per-tenant bounded queues and are
/// dispatched in weighted-fair order (AdmissionController); concurrent
/// dispatch is capped by the AIMD limiter when an SLO is configured.
///
/// Deadlines: each task records its enqueue time, and the measured queue
/// wait is passed to Search as `elapsed_ms`, so EngineConfig::deadline_ms
/// bounds end-to-end latency (queue wait + execution). A query whose
/// deadline expires while still queued is shed with kDeadlineExceeded —
/// the engine's shed path is the single authority for that decision; the
/// executor only counts the outcome.
///
/// Destruction/Shutdown drains: queued tasks still execute (the drain
/// ignores the concurrency limit), then workers join. Submissions after
/// Shutdown resolve to kUnavailable — the component is down, not
/// overloaded, so callers must not interpret it as backpressure.
class QueryExecutor {
 public:
  /// `engine` must outlive the executor.
  explicit QueryExecutor(const ContextSearchEngine* engine,
                         ExecutorConfig config = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues one query for `tenant` (empty = default tenant). Never
  /// blocks: a full tenant queue (or a shut-down executor) yields an
  /// already-resolved future carrying the typed error.
  std::future<Result<SearchResult>> SubmitSearch(ContextQuery query,
                                                 EvaluationMode mode,
                                                 std::string_view tenant = {});

  /// Runs the whole batch through the pool and returns results in input
  /// order. Blocks for queue space (no kResourceExhausted rejections) and
  /// for completion.
  std::vector<Result<SearchResult>> SearchBatch(
      std::span<const ContextQuery> queries, EvaluationMode mode,
      std::string_view tenant = {});

  /// Stops accepting work, drains the queues, joins workers. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  ExecutorMetrics metrics() const;
  /// Locked copy-out of the admission state (per-tenant depths/counters,
  /// concurrency limit, shed counts). Basis of the admission.* metrics
  /// and the shell's `.qos`.
  AdmissionSnapshot admission() const;
  /// Locked copy-out of the pipeline state (per-stage depth/occupancy,
  /// batch-size histogram). Basis of pipeline.* metrics and the shell's
  /// `.pipeline`; `enabled == false` when running the legacy pool.
  PipelineMetrics pipeline() const;
  size_t queue_depth() const;
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size() + parse_workers_.size() +
                                 intersect_workers_.size() +
                                 score_workers_.size());
  }
  const ContextSearchEngine& engine() const { return *engine_; }

 private:
  struct Task {
    ContextQuery query;
    EvaluationMode mode;
    std::promise<Result<SearchResult>> promise;
    WallTimer queued;  // started at enqueue; read at dequeue = queue wait
  };

  /// One query in flight through the staged pipeline. Owned by exactly
  /// one stage at a time; the bounded-queue handoff publishes it to the
  /// next stage (mutex acquire/release = happens-before), so no field
  /// needs its own synchronization.
  struct PipelineTask {
    std::unique_ptr<PreparedSearch> ps;
    std::promise<Result<SearchResult>> promise;
    size_t tenant = 0;
    double admission_wait_ms = 0;  // pre-parse wait; shed classification
    WallTimer enqueued;            // started at Enqueue; read = e2e time
    WallTimer staged;              // restarted at each queue push
    std::vector<TermId> terms;     // sorted unique keywords ∪ context
    bool failed = false;           // finalized mid-batch with an error
  };

  /// Bounded MPMC queue of PipelineTasks. Push blocks while full (that is
  /// the backpressure), Pop blocks while empty; Close wakes everyone and
  /// makes Pop return false once drained. PopBatch additionally pulls up
  /// to max_batch-1 queued tasks sharing a term with the head, forming
  /// the intersect stage's shared-decode batch.
  class StageQueue {
   public:
    explicit StageQueue(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    bool Push(PipelineTask task);
    bool Pop(PipelineTask& out);
    bool PopBatch(std::vector<PipelineTask>& out, size_t max_batch);
    void Close();
    size_t depth() const;
    size_t max_depth() const;

   private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<PipelineTask> q_;
    size_t max_depth_ = 0;
    bool closed_ = false;
  };

  static uint32_t ResolveThreads(const ExecutorConfig& config);

  /// Shared enqueue path; `block` selects SearchBatch (wait for space) vs
  /// SubmitSearch (reject) semantics.
  std::future<Result<SearchResult>> Enqueue(ContextQuery query,
                                            EvaluationMode mode,
                                            std::string_view tenant,
                                            bool block);
  void WorkerLoop();

  // Pipeline stage loops (pipeline.enabled only). Parse shares the
  // admission dispatch head with the legacy loop; intersect and score
  // consume the bounded stage queues.
  void ParseLoop();
  void IntersectLoop();
  void ScoreLoop();
  /// Completion bookkeeping shared by every stage that resolves a query
  /// (identical to the legacy loop's: completed++ and OnComplete BEFORE
  /// the promise resolves, histograms outside mu_).
  void FinalizeTask(PipelineTask& task, Result<SearchResult> result);

  const ContextSearchEngine* engine_;
  ExecutorConfig config_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> parse_workers_;
  std::vector<std::thread> intersect_workers_;
  std::vector<std::thread> score_workers_;
  std::unique_ptr<StageQueue> intersect_q_;
  std::unique_ptr<StageQueue> score_q_;
  WallTimer uptime_;

  // Observability: per-event latency histograms (cached instrument
  // pointers, relaxed-atomic updates outside mu_) plus a sample callback
  // that exports the locked ExecutorMetrics/AdmissionSnapshot copy-outs
  // under executor.* / admission.* names. The callback handle is released
  // in Shutdown — the registry guarantees the callback is not running once
  // removal returns, so a shut-down executor can be destroyed safely.
  Histogram* queue_wait_hist_ = nullptr;
  Histogram* exec_hist_ = nullptr;
  Histogram* e2e_hist_ = nullptr;
  uint64_t metrics_callback_ = 0;

  mutable std::mutex mu_;
  std::mutex join_mu_;                 // serializes Shutdown callers
  std::condition_variable not_empty_;  // signalled on push, completion,
                                       // and shutdown (dispatch predicate)
  std::condition_variable not_full_;   // signalled on dispatch
  std::vector<std::deque<Task>> tenant_queues_;  // parallel to admission_
  AdmissionController admission_;      // guarded by mu_
  bool shutdown_ = false;
  ExecutorMetrics metrics_;  // guarded by mu_; queue_depth derived

  /// Pipeline counters guarded by mu_ (stage queue depths live in the
  /// StageQueues; pipeline() merges both under a consistent read).
  struct PipelineCounters {
    uint64_t parse_processed = 0;
    uint64_t intersect_processed = 0;
    uint64_t score_processed = 0;
    double parse_busy_ms = 0;
    double intersect_busy_ms = 0;
    double score_busy_ms = 0;
    double intersect_wait_ms = 0;
    double score_wait_ms = 0;
    uint64_t batches = 0;
    uint64_t batched_queries = 0;
    size_t max_batch = 0;
    std::vector<uint64_t> batch_size_counts;
    uint64_t arena_hits = 0;
    uint64_t arena_misses = 0;
  };
  PipelineCounters pipeline_counters_;  // guarded by mu_
};

}  // namespace csr

#endif  // CSR_ENGINE_EXECUTOR_H_
