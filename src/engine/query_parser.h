#ifndef CSR_ENGINE_QUERY_PARSER_H_
#define CSR_ENGINE_QUERY_PARSER_H_

#include <functional>
#include <string>
#include <string_view>

#include "corpus/generator.h"
#include "engine/query.h"
#include "util/result.h"

namespace csr {

/// Parses the textual query syntax of Section 2.1:
///
///   keyword keyword ... | predicate & predicate & ... [@ min..max]
///
/// The '|' separates the keyword query Q_k from the context specification
/// P; 'AND' and '&' are interchangeable separators on the predicate side,
/// whitespace on the keyword side. Term strings are resolved to ids by
/// caller-provided resolvers, so the parser is agnostic to where names
/// come from (a Vocabulary, the synthetic corpus' "w<id>" scheme, an
/// ontology).
///
/// The optional `@ min..max` suffix restricts the context to publication
/// years in the inclusive range (Section 7 extension).
///
/// Examples:
///   "pancreas leukemia | digestive_system"
///   "w120 w4571 | C3 & C3.7"
///   "w120 w4571 | C3 @ 1990..2005"
class QueryParser {
 public:
  /// Returns kInvalidTermId for unknown names.
  using Resolver = std::function<TermId(std::string_view)>;

  QueryParser(Resolver keyword_resolver, Resolver predicate_resolver)
      : keyword_resolver_(std::move(keyword_resolver)),
        predicate_resolver_(std::move(predicate_resolver)) {}

  /// Parses `text`. Errors:
  ///   InvalidArgument — no keywords, or empty context after '|'
  ///   NotFound        — a keyword/predicate name that does not resolve
  Result<ContextQuery> Parse(std::string_view text) const;

  /// A parser for the synthetic corpus: keywords are "w<id>" (bounded by
  /// the vocabulary size), predicates are ontology concept names like
  /// "C3.7.2". The corpus must outlive the parser.
  static QueryParser ForCorpus(const Corpus& corpus);

 private:
  Resolver keyword_resolver_;
  Resolver predicate_resolver_;
};

}  // namespace csr

#endif  // CSR_ENGINE_QUERY_PARSER_H_
