#ifndef CSR_ENGINE_MERGER_H_
#define CSR_ENGINE_MERGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace csr {

class ContextSearchEngine;

/// The background merge/compaction thread of the LSM segment architecture
/// (DESIGN.md §14). It owns no segment state: each cycle it calls
/// ContextSearchEngine::MergeOnce(), which applies one step of the
/// size-tiered policy under the engine's ingest mutex and publishes the
/// merged LiveSet by pointer swap — so queries are never blocked and the
/// merger races appends only on that mutex. After a successful merge it
/// immediately tries again (merges cascade); when nothing is mergeable it
/// sleeps for `interval_ms` or until Stop().
class SegmentMerger {
 public:
  SegmentMerger(ContextSearchEngine* engine, double interval_ms);
  ~SegmentMerger();  // joins the thread

  SegmentMerger(const SegmentMerger&) = delete;
  SegmentMerger& operator=(const SegmentMerger&) = delete;

  /// Signals the thread to exit and joins it. Idempotent.
  void Stop();

  /// Merges performed by this thread (not counting MergeOnce calls made
  /// directly by tests or the shell).
  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }

 private:
  void Run();

  ContextSearchEngine* engine_;
  double interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::atomic<uint64_t> merges_{0};
  std::thread thread_;
};

}  // namespace csr

#endif  // CSR_ENGINE_MERGER_H_
