#include "engine/wand.h"

#include <algorithm>
#include <cmath>

#include "engine/top_k.h"
#include "index/posting_cursor.h"

namespace csr {

namespace {

struct TermState {
  size_t query_index;          // position in QueryStats::keywords
  PostingCursor iter;
  double idf_weight;           // tq * ln((|C|+1)/df)
  double upper_bound;          // idf_weight * max tf part / min norm
  // Block-max memo: TfPart of the most recently probed block, keyed by
  // that block's last docid (strictly increasing across a list, so the
  // key is unique). Successive pivots usually land in the same block;
  // the memo spares the double-log per re-probe.
  DocId bound_block_end = kInvalidDocId;
  double bound_tf_part = 0.0;
};

double TfPart(uint32_t tf) {
  if (tf == 0) return 0.0;
  return 1.0 + std::log(1.0 + std::log(static_cast<double>(tf)));
}

/// Builds the per-term states. Terms with df == 0 in `stats` (absent from
/// the scoring collection) contribute nothing and are dropped.
std::vector<TermState> BuildStates(const InvertedIndex& index,
                                   const QueryStats& query,
                                   const CollectionStats& stats,
                                   double pivot_s, CostCounters* cost) {
  std::vector<TermState> states;
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    PostingCursor cursor = index.cursor(query.keywords[i], cost);
    if (!cursor.valid() || stats.df[i] == 0) continue;
    double idf = std::log(static_cast<double>(stats.cardinality + 1) /
                          static_cast<double>(stats.df[i]));
    double weight = static_cast<double>(query.tq[i]) * idf;
    // Most favourable length normalization: norm >= 1 - s for any len >= 0.
    double ub = weight * TfPart(index.term_max_tf(query.keywords[i])) /
                (1.0 - pivot_s);
    states.push_back(TermState{i, std::move(cursor), weight, ub});
  }
  return states;
}

double ScoreDoc(const std::vector<const TermState*>& matching,
                uint32_t doc_length, double avgdl, double pivot_s) {
  double norm = (1.0 - pivot_s) +
                pivot_s * static_cast<double>(doc_length) / avgdl;
  double score = 0;
  for (const TermState* t : matching) {
    score += t->idf_weight * TfPart(t->iter.tf()) / norm;
  }
  return score;
}

}  // namespace

TopKRunResult ExhaustiveOrTopK(const InvertedIndex& index,
                               const QueryStats& query,
                               const CollectionStats& stats, uint32_t k,
                               double pivot_s) {
  TopKRunResult out;
  std::vector<TermState> states =
      BuildStates(index, query, stats, pivot_s, &out.cost);
  double avgdl = stats.avgdl();
  if (states.empty() || avgdl <= 0) return out;

  TopKCollector collector(k);
  std::vector<const TermState*> matching;
  while (true) {
    // Document-at-a-time union: the smallest current docid.
    DocId next = kInvalidDocId;
    for (const TermState& t : states) {
      if (!t.iter.AtEnd()) next = std::min(next, t.iter.doc());
    }
    if (next == kInvalidDocId) break;
    matching.clear();
    for (TermState& t : states) {
      if (!t.iter.AtEnd() && t.iter.doc() == next) matching.push_back(&t);
    }
    collector.Offer(next, ScoreDoc(matching, index.doc_length(next), avgdl,
                                   pivot_s));
    out.docs_scored++;
    for (TermState& t : states) {
      if (!t.iter.AtEnd() && t.iter.doc() == next) t.iter.Next();
    }
  }
  out.top_docs = collector.Take();
  return out;
}

TopKRunResult WandTopK(const InvertedIndex& index, const QueryStats& query,
                       const CollectionStats& stats, uint32_t k,
                       double pivot_s, bool block_max, TraceContext tctx) {
  TopKRunResult out;
  SpanGuard span(tctx, "wand_scoring");
  span.Attr("top_k", static_cast<uint64_t>(k));
  span.Attr("block_max", block_max);
  std::vector<TermState> states =
      BuildStates(index, query, stats, pivot_s, &out.cost);
  double avgdl = stats.avgdl();
  if (states.empty() || avgdl <= 0) return out;

  TopKCollector collector(k);
  double threshold = 0;  // k-th best score so far
  std::vector<double> heap_scores;  // tracks the k-th best

  std::vector<TermState*> order;
  for (TermState& t : states) order.push_back(&t);
  std::vector<const TermState*> matching;

  while (true) {
    // Sort active terms by current docid.
    order.erase(std::remove_if(order.begin(), order.end(),
                               [](TermState* t) { return t->iter.AtEnd(); }),
                order.end());
    if (order.empty()) break;
    std::sort(order.begin(), order.end(), [](TermState* a, TermState* b) {
      return a->iter.doc() < b->iter.doc();
    });

    // Find the pivot: the first prefix whose bound sum can beat the
    // threshold.
    double acc = 0;
    size_t pivot = order.size();
    for (size_t i = 0; i < order.size(); ++i) {
      acc += order[i]->upper_bound;
      if (acc > threshold) {
        pivot = i;
        break;
      }
    }
    if (pivot == order.size()) break;  // nothing can enter the top K
    DocId pivot_doc = order[pivot]->iter.doc();

    if (order[0]->iter.doc() == pivot_doc) {
      // All prefix lists sit on pivot_doc. Block-max refinement: re-bound
      // the prefix using the per-block max tf covering pivot_doc. Any
      // document in [pivot_doc, block_end] scores at most the block bound
      // sum against the prefix terms, and the suffix terms all sit at
      // docids past the pivot — so if even the block bound cannot beat the
      // threshold, the whole covered range is skipped without decoding.
      // The probe reads only BlockMeta (base/max_doc/max_tf recorded at
      // encode time), so it is representation-blind: varint, FOR, and
      // bitmap blocks all bound — and skip — identically; only a block
      // that survives pruning is decoded, through its codec tag.
      if (block_max && threshold > 0) {
        double block_acc = 0;
        DocId block_end = kInvalidDocId;
        bool bounded = true;
        for (size_t i = 0; i <= pivot; ++i) {
          DocId last_doc = 0;
          uint32_t btf = 0;
          TermState* t = order[i];
          if (!t->iter.BlockBound(pivot_doc, &last_doc, &btf)) {
            bounded = false;
            break;
          }
          if (t->bound_block_end != last_doc) {
            t->bound_block_end = last_doc;
            t->bound_tf_part = TfPart(btf);
          }
          block_acc += t->idf_weight * t->bound_tf_part / (1.0 - pivot_s);
          block_end = std::min(block_end, last_doc);
        }
        if (bounded && block_acc <= threshold) {
          DocId next_doc = block_end == kInvalidDocId
                               ? kInvalidDocId
                               : block_end + 1;
          if (pivot + 1 < order.size()) {
            next_doc = std::min(next_doc, order[pivot + 1]->iter.doc());
          }
          if (next_doc > pivot_doc) {
            out.blocks_skipped++;
            out.docs_skipped += next_doc - pivot_doc;
            for (size_t i = 0; i <= pivot; ++i) {
              order[i]->iter.SkipTo(next_doc);
            }
            continue;
          }
        }
      }
      // Score pivot_doc fully.
      matching.clear();
      for (TermState* t : order) {
        if (!t->iter.AtEnd() && t->iter.doc() == pivot_doc) {
          matching.push_back(t);
        }
      }
      double score = ScoreDoc(matching, index.doc_length(pivot_doc), avgdl,
                              pivot_s);
      out.docs_scored++;
      collector.Offer(pivot_doc, score);
      // Maintain the pruning threshold as the k-th best score seen: a
      // min-heap of the k largest scores, its front being the k-th.
      heap_scores.push_back(score);
      std::push_heap(heap_scores.begin(), heap_scores.end(),
                     std::greater<>());
      if (heap_scores.size() > k) {
        std::pop_heap(heap_scores.begin(), heap_scores.end(),
                      std::greater<>());
        heap_scores.pop_back();
      }
      if (heap_scores.size() == k) threshold = heap_scores.front();
      for (TermState* t : order) {
        if (!t->iter.AtEnd() && t->iter.doc() == pivot_doc) t->iter.Next();
      }
    } else {
      // Advance the highest-bound list strictly before the pivot doc to
      // pivot_doc; the skipped documents can never reach the threshold.
      // (Lists between positions 0 and pivot may already sit on pivot_doc;
      // advancing one of those would not make progress.)
      size_t best = SIZE_MAX;
      for (size_t i = 0; i <= pivot; ++i) {
        if (order[i]->iter.doc() >= pivot_doc) continue;
        if (best == SIZE_MAX ||
            order[i]->upper_bound > order[best]->upper_bound) {
          best = i;
        }
      }
      if (best == SIZE_MAX) break;  // defensive; cannot happen
      out.docs_skipped += pivot_doc - order[best]->iter.doc();
      order[best]->iter.SkipTo(pivot_doc);
    }
  }
  out.top_docs = collector.Take();
  if (span) {
    span.Attr("docs_scored", out.docs_scored);
    span.Attr("docs_skipped", out.docs_skipped);
    span.Attr("blocks_skipped", out.blocks_skipped);
  }
  return out;
}

}  // namespace csr
