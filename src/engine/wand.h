#ifndef CSR_ENGINE_WAND_H_
#define CSR_ENGINE_WAND_H_

#include <cstdint>
#include <vector>

#include "engine/query.h"
#include "index/inverted_index.h"
#include "obs/trace.h"
#include "stats/statistics.h"

namespace csr {

/// Disjunctive (OR-semantics) top-K retrieval over the content index with
/// pivoted-TF-IDF scoring, in two flavours:
///
///  - ExhaustiveOrTopK: document-at-a-time union, scores every matching
///    document.
///  - WandTopK: the WAND pruning strategy — per-term score upper bounds
///    let the driver skip documents that cannot enter the top K. With
///    block-max enabled (the default), the per-block max tf recorded in
///    the posting skip metadata refines the pivot's bound: when even the
///    blocks covering the pivot cannot beat the heap threshold, the whole
///    block range is skipped without decoding it (Block-Max WAND).
///
/// Both return identical rankings; WAND just scores fewer documents.
///
/// This module exists to reproduce the Section 3.2.2 argument: WAND's
/// upper bounds are functions of the collection statistics (idf, avgdl).
/// For conventional queries those are known at indexing time, so WAND
/// prunes aggressively. For context-sensitive queries the statistics only
/// exist AFTER the context has been materialized and aggregated — by which
/// point the expensive work is already done, so top-K pruning cannot
/// rescue the straightforward plan. bench_ablation_wand measures both
/// sides.
struct TopKRunResult {
  std::vector<SearchResultEntry> top_docs;
  uint64_t docs_scored = 0;    // full scoring computations
  uint64_t docs_skipped = 0;   // docs bypassed by the pruning bound
  uint64_t blocks_skipped = 0; // block ranges bypassed by block-max bounds
  CostCounters cost;
};

/// Scores every document containing at least one query keyword.
TopKRunResult ExhaustiveOrTopK(const InvertedIndex& index,
                               const QueryStats& query,
                               const CollectionStats& stats, uint32_t k,
                               double pivot_s = 0.2);

/// WAND: maintains per-term upper bounds (max-tf term part × idf × tq,
/// with the most favourable length normalization) and fully scores only
/// pivot documents whose bound sum reaches the current top-K threshold.
/// `block_max` toggles the block-max refinement (off reproduces classic
/// WAND, for the ablation bench). An active `tctx` records a
/// "wand_scoring" span carrying docs_scored / docs_skipped /
/// blocks_skipped and the pruning configuration.
TopKRunResult WandTopK(const InvertedIndex& index, const QueryStats& query,
                       const CollectionStats& stats, uint32_t k,
                       double pivot_s = 0.2, bool block_max = true,
                       TraceContext tctx = {});

}  // namespace csr

#endif  // CSR_ENGINE_WAND_H_
