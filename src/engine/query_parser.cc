#include "engine/query_parser.h"

#include <algorithm>

#include "util/string_util.h"

namespace csr {

namespace {

/// Splits on whitespace and '&', dropping "AND"/"and" connector tokens.
std::vector<std::string> Terms(std::string_view part) {
  std::vector<std::string> tokens = SplitString(part, " \t&,");
  std::vector<std::string> out;
  for (std::string& t : tokens) {
    if (t == "AND" || t == "and") continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

Result<ContextQuery> QueryParser::Parse(std::string_view text) const {
  size_t bar = text.find('|');
  std::string_view keyword_part =
      bar == std::string_view::npos ? text : text.substr(0, bar);
  std::string_view context_part =
      bar == std::string_view::npos ? std::string_view{}
                                    : text.substr(bar + 1);

  ContextQuery q;
  for (const std::string& name : Terms(keyword_part)) {
    TermId id = keyword_resolver_(name);
    if (id == kInvalidTermId) {
      return Status::NotFound("unknown keyword: " + name);
    }
    q.keywords.push_back(id);
  }
  if (q.keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }

  if (bar != std::string_view::npos) {
    // Optional year-range suffix: "... @ 1990..2005".
    size_t at = context_part.find('@');
    if (at != std::string_view::npos) {
      std::string_view range_part = context_part.substr(at + 1);
      context_part = context_part.substr(0, at);
      size_t dots = range_part.find("..");
      if (dots == std::string_view::npos) {
        return Status::InvalidArgument(
            "year range must have the form '@ min..max'");
      }
      auto parse_year = [](std::string_view text) -> int32_t {
        int32_t y = 0;
        bool any = false;
        for (char c : text) {
          if (c == ' ' || c == '\t') continue;
          if (c < '0' || c > '9' || y > 65535) return -1;
          y = y * 10 + (c - '0');
          any = true;
        }
        return any ? y : -1;
      };
      int32_t lo = parse_year(range_part.substr(0, dots));
      int32_t hi = parse_year(range_part.substr(dots + 2));
      if (lo < 0 || hi < 0 || lo > hi || hi > 65535) {
        return Status::InvalidArgument("invalid year range");
      }
      q.years = YearRange{static_cast<uint16_t>(lo),
                          static_cast<uint16_t>(hi)};
    }
    std::vector<std::string> names = Terms(context_part);
    if (names.empty()) {
      return Status::InvalidArgument("empty context specification after '|'");
    }
    for (const std::string& name : names) {
      TermId id = predicate_resolver_(name);
      if (id == kInvalidTermId) {
        return Status::NotFound("unknown context predicate: " + name);
      }
      q.context.push_back(id);
    }
    std::sort(q.context.begin(), q.context.end());
    q.context.erase(std::unique(q.context.begin(), q.context.end()),
                    q.context.end());
  }
  return q;
}

QueryParser QueryParser::ForCorpus(const Corpus& corpus) {
  uint32_t vocab_size = corpus.config.vocab_size;
  Resolver keywords = [vocab_size](std::string_view name) -> TermId {
    if (name.size() < 2 || name[0] != 'w') return kInvalidTermId;
    TermId id = 0;
    for (char c : name.substr(1)) {
      if (c < '0' || c > '9') return kInvalidTermId;
      id = id * 10 + static_cast<TermId>(c - '0');
      if (id >= vocab_size) return kInvalidTermId;
    }
    return id;
  };
  const Ontology* ont = &corpus.ontology;
  Resolver predicates = [ont](std::string_view name) -> TermId {
    return ont->Find(name);
  };
  return QueryParser(std::move(keywords), std::move(predicates));
}

}  // namespace csr
