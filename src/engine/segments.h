#ifndef CSR_ENGINE_SEGMENTS_H_
#define CSR_ENGINE_SEGMENTS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/segment.h"
#include "views/materialized_view.h"

namespace csr {

/// One live segment beyond the base: the index slice plus this segment's
/// materialized-view deltas — per-view partial aggregates over exactly the
/// segment's documents, stored in the base catalog's insertion order so
/// ViewCatalog::FindBestIndex addresses both the base view and every
/// segment's delta. Deltas are maintained synchronously at append/seal, so
/// the view plan and the straightforward plan always agree; "staleness" is
/// merge lag (aggregates not yet physically folded into the base), never
/// wrong answers.
struct EngineSegment {
  IndexSegment index;
  std::vector<MaterializedView> view_deltas;

  EngineSegment() = default;
  EngineSegment(const EngineSegment&) = delete;
  EngineSegment& operator=(const EngineSegment&) = delete;
  EngineSegment(EngineSegment&&) = default;
  EngineSegment& operator=(EngineSegment&&) = default;
};

/// Immutable snapshot of the engine's segmented state: the extras partition
/// the global docid range [base_docs, total_docs) in ascending, contiguous
/// order; at most the last one is the unsealed write buffer. Published by
/// shared_ptr swap under a leaf mutex — a query takes one snapshot and
/// serves entirely from it, so concurrent appends, seals, and merges never
/// move data under a running query.
struct LiveSet {
  std::vector<std::shared_ptr<const EngineSegment>> extras;
  uint64_t base_docs = 0;
  uint64_t total_docs = 0;

  /// Monotonic publish stamp. Keys the stats cache so a cached statistic
  /// can only be served to queries seeing the same collection snapshot.
  uint64_t epoch = 1;
};

/// One part of a segmented query plan: the base index or one extra
/// segment, viewed through the uniform surface the per-part stats and
/// retrieval loops need. `years` is indexed by LOCAL docid; `base` maps
/// local to global. `view_deltas` is nullptr for the base part (the base
/// catalog's views are the "delta" of the base).
struct SearchPart {
  const InvertedIndex* content = nullptr;
  const InvertedIndex* predicate = nullptr;
  std::span<const uint16_t> years;
  DocId base = 0;
  uint64_t segment_id = 0;
  const std::vector<MaterializedView>* view_deltas = nullptr;
};

/// Per-segment shape row for the shell's `.segments`, tests, and benches.
struct SegmentInfo {
  uint64_t id = 0;
  DocId base = 0;
  uint32_t num_docs = 0;
  bool sealed = false;
  std::array<uint64_t, 3> codec_blocks{};  // [varint, FOR, bitmap]
  uint64_t view_delta_tuples = 0;
  uint64_t memory_bytes = 0;
};

}  // namespace csr

#endif  // CSR_ENGINE_SEGMENTS_H_
