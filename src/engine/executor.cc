#include "engine/executor.h"

#include <algorithm>
#include <utility>

namespace csr {

QueryExecutor::QueryExecutor(const ContextSearchEngine* engine,
                             ExecutorConfig config)
    : engine_(engine), config_(config) {
  uint32_t threads = config_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;

  // Register into the engine's metrics registry before any worker starts:
  // the histograms are cached raw pointers (lock-free updates in
  // WorkerLoop), and the sample callback exports the legacy
  // ExecutorMetrics struct — through the locked metrics() copy-out, never
  // a bare field read — under stable executor.* names.
  MetricsRegistry& registry = engine_->metrics_registry();
  queue_wait_hist_ = &registry.GetHistogram("executor.queue_wait_ms");
  exec_hist_ = &registry.GetHistogram("executor.exec_ms");
  metrics_callback_ = registry.AddSampleCallback([this](MetricsSnapshot& s) {
    ExecutorMetrics m = metrics();  // locked copy-out (takes mu_)
    s.counters["executor.submitted"] = m.submitted;
    s.counters["executor.rejected"] = m.rejected;
    s.counters["executor.completed"] = m.completed;
    s.gauges["executor.queue_depth"] = static_cast<double>(m.queue_depth);
    s.gauges["executor.max_queue_depth"] =
        static_cast<double>(m.max_queue_depth);
    s.gauges["executor.queue_wait_ms_total"] = m.queue_wait_ms_total;
    s.gauges["executor.queue_wait_ms_max"] = m.queue_wait_ms_max;
    s.gauges["executor.exec_ms_total"] = m.exec_ms_total;
    s.gauges["executor.num_threads"] = static_cast<double>(num_threads());
  });

  workers_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(); }

void QueryExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // join_mu_ serializes concurrent Shutdown callers (join is not).
  std::lock_guard<std::mutex> jlock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Unhook the registry export once workers are gone. Removal blocks on
  // any in-flight Snapshot, so after this line no callback can touch this
  // executor — destruction is safe even if the engine's registry outlives
  // us. (Lock order here is join_mu_ -> registry mutex; the callback takes
  // registry mutex -> mu_, never join_mu_, so there is no cycle.)
  if (metrics_callback_ != 0) {
    engine_->metrics_registry().RemoveSampleCallback(metrics_callback_);
    metrics_callback_ = 0;
  }
}

std::future<Result<SearchResult>> QueryExecutor::Enqueue(ContextQuery query,
                                                         EvaluationMode mode,
                                                         bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  if (block) {
    not_full_.wait(lock, [this] {
      return shutdown_ || queue_.size() < config_.queue_capacity;
    });
  }
  if (shutdown_) {
    lock.unlock();
    std::promise<Result<SearchResult>> p;
    p.set_value(Status::FailedPrecondition("executor is shut down"));
    return p.get_future();
  }
  if (queue_.size() >= config_.queue_capacity) {
    metrics_.rejected++;
    lock.unlock();
    std::promise<Result<SearchResult>> p;
    p.set_value(Status::ResourceExhausted(
        "executor queue full (" + std::to_string(config_.queue_capacity) +
        " queries queued); retry or shed load"));
    return p.get_future();
  }
  queue_.push_back(Task{std::move(query), mode, {}, {}});
  std::future<Result<SearchResult>> f = queue_.back().promise.get_future();
  metrics_.submitted++;
  metrics_.max_queue_depth =
      std::max(metrics_.max_queue_depth, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return f;
}

std::future<Result<SearchResult>> QueryExecutor::SubmitSearch(
    ContextQuery query, EvaluationMode mode) {
  return Enqueue(std::move(query), mode, /*block=*/false);
}

std::vector<Result<SearchResult>> QueryExecutor::SearchBatch(
    std::span<const ContextQuery> queries, EvaluationMode mode) {
  std::vector<std::future<Result<SearchResult>>> futures;
  futures.reserve(queries.size());
  for (const ContextQuery& q : queries) {
    futures.push_back(Enqueue(q, mode, /*block=*/true));
  }
  std::vector<Result<SearchResult>> results;
  results.reserve(queries.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void QueryExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    double wait_ms;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      wait_ms = task.queued.ElapsedMillis();
      metrics_.queue_wait_ms_total += wait_ms;
      metrics_.queue_wait_ms_max =
          std::max(metrics_.queue_wait_ms_max, wait_ms);
    }
    not_full_.notify_one();

    WallTimer exec_timer;
    Result<SearchResult> result =
        engine_->Search(task.query, task.mode, wait_ms);
    double exec_ms = exec_timer.ElapsedMillis();
    {
      // Count completion BEFORE fulfilling the promise: a caller that has
      // observed its future ready must see `completed` include that task.
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.completed++;
      metrics_.exec_ms_total += exec_ms;
    }
    // Histogram updates are relaxed atomics on cached pointers — outside
    // mu_ by design (see the registry lock-ordering contract).
    if (engine_->metrics_enabled()) {
      queue_wait_hist_->Observe(wait_ms);
      exec_hist_->Observe(exec_ms);
    }
    task.promise.set_value(std::move(result));
  }
}

ExecutorMetrics QueryExecutor::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutorMetrics snapshot = metrics_;
  snapshot.queue_depth = queue_.size();
  return snapshot;
}

size_t QueryExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace csr
