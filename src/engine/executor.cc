#include "engine/executor.h"

#include <algorithm>
#include <utility>

namespace csr {

uint32_t QueryExecutor::ResolveThreads(const ExecutorConfig& config) {
  uint32_t threads = config.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return threads;
}

namespace {

/// No explicit tenants → one default tenant bounded by the legacy
/// queue_capacity knob, which reproduces the old single-queue semantics.
AdmissionConfig ResolveAdmission(const ExecutorConfig& config) {
  AdmissionConfig a = config.admission;
  if (a.tenants.empty()) {
    size_t cap = std::max<size_t>(1, config.queue_capacity);
    a.tenants.push_back(TenantConfig{"default", 1.0, cap});
  }
  return a;
}

uint32_t ResolveParseWorkers(const PipelineConfig& p) {
  return std::max(1u, p.parse_workers);
}

uint32_t ResolveIntersectWorkers(const ExecutorConfig& config) {
  uint32_t n = config.pipeline.intersect_workers;
  if (n == 0) n = config.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  return n;
}

uint32_t ResolveScoreWorkers(const PipelineConfig& p) {
  return std::max(1u, p.score_workers);
}

/// The admission controller's inflight cap covers a query's WHOLE
/// pipeline residence (BeginDispatch at parse, OnComplete at finalize),
/// so its default limit must cover the stage workers plus the queued
/// tasks between them — otherwise the AIMD ceiling would strangle
/// pipeline occupancy to the parse worker count.
uint32_t PipelineConcurrency(const ExecutorConfig& config) {
  return ResolveParseWorkers(config.pipeline) +
         ResolveIntersectWorkers(config) +
         ResolveScoreWorkers(config.pipeline) +
         static_cast<uint32_t>(2 * std::max<size_t>(
                                       1, config.pipeline.stage_queue_capacity));
}

/// True when the two sorted term vectors share at least one element.
bool SharesTerm(const std::vector<TermId>& a, const std::vector<TermId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

QueryExecutor::QueryExecutor(const ContextSearchEngine* engine,
                             ExecutorConfig config)
    : engine_(engine),
      config_(std::move(config)),
      admission_(ResolveAdmission(config_),
                 config_.pipeline.enabled ? PipelineConcurrency(config_)
                                          : ResolveThreads(config_)) {
  uint32_t threads = ResolveThreads(config_);
  tenant_queues_.resize(admission_.num_tenants());

  // Register into the engine's metrics registry before any worker starts:
  // the histograms are cached raw pointers (lock-free updates in
  // WorkerLoop), and the sample callback exports the legacy
  // ExecutorMetrics struct and the admission state — through the locked
  // copy-outs, never a bare field read — under stable executor.* and
  // admission.* names.
  MetricsRegistry& registry = engine_->metrics_registry();
  queue_wait_hist_ = &registry.GetHistogram("executor.queue_wait_ms");
  exec_hist_ = &registry.GetHistogram("executor.exec_ms");
  e2e_hist_ = &registry.GetHistogram("executor.e2e_ms");
  metrics_callback_ = registry.AddSampleCallback([this](MetricsSnapshot& s) {
    ExecutorMetrics m = metrics();  // locked copy-out (takes mu_)
    s.counters["executor.submitted"] = m.submitted;
    s.counters["executor.rejected"] = m.rejected;
    s.counters["executor.completed"] = m.completed;
    s.gauges["executor.queue_depth"] = static_cast<double>(m.queue_depth);
    s.gauges["executor.max_queue_depth"] =
        static_cast<double>(m.max_queue_depth);
    s.gauges["executor.queue_wait_ms_total"] = m.queue_wait_ms_total;
    s.gauges["executor.queue_wait_ms_max"] = m.queue_wait_ms_max;
    s.gauges["executor.exec_ms_total"] = m.exec_ms_total;
    s.gauges["executor.num_threads"] = static_cast<double>(num_threads());

    AdmissionSnapshot a = admission();  // locked copy-out (takes mu_)
    s.counters["admission.admitted"] = a.admitted;
    s.counters["admission.rejected"] = a.rejected;
    s.counters["admission.completed"] = a.completed;
    s.counters["admission.shed"] = a.shed;
    s.counters["admission.limit_increases"] = a.limit_increases;
    s.counters["admission.limit_decreases"] = a.limit_decreases;
    s.gauges["admission.limit"] = static_cast<double>(a.limit);
    s.gauges["admission.inflight"] = static_cast<double>(a.inflight);
    s.gauges["admission.window_p99_ms"] = a.window_p99_ms;
    s.gauges["admission.slo_ms"] = a.slo_ms;
    for (const TenantSnapshot& t : a.tenants) {
      std::string prefix = "admission.tenant." + t.name;
      s.gauges[prefix + ".depth"] = static_cast<double>(t.depth);
      s.gauges[prefix + ".weight"] = t.weight;
      s.counters[prefix + ".admitted"] = t.admitted;
      s.counters[prefix + ".rejected"] = t.rejected;
      s.counters[prefix + ".completed"] = t.completed;
      s.counters[prefix + ".shed"] = t.shed;
    }

    if (config_.pipeline.enabled) {
      PipelineMetrics p = pipeline();  // locked copy-out (takes mu_)
      auto stage = [&s](const char* name, const PipelineStageMetrics& st) {
        std::string prefix = std::string("pipeline.") + name;
        s.counters[prefix + ".processed"] = st.processed;
        s.gauges[prefix + ".queue_depth"] = static_cast<double>(st.queue_depth);
        s.gauges[prefix + ".max_queue_depth"] =
            static_cast<double>(st.max_queue_depth);
        s.gauges[prefix + ".queue_wait_ms_total"] = st.queue_wait_ms_total;
        s.gauges[prefix + ".busy_ms_total"] = st.busy_ms_total;
        s.gauges[prefix + ".workers"] = static_cast<double>(st.workers);
      };
      stage("parse", p.parse);
      stage("intersect", p.intersect);
      stage("score", p.score);
      s.counters["pipeline.batches"] = p.batches;
      s.counters["pipeline.batched_queries"] = p.batched_queries;
      s.gauges["pipeline.max_batch"] = static_cast<double>(p.max_batch);
      s.counters["pipeline.arena_hits"] = p.arena_hits;
      s.counters["pipeline.arena_misses"] = p.arena_misses;
    }
  });

  if (config_.pipeline.enabled) {
    // Staged pipeline: bounded queues first (the loops touch them), then
    // the per-stage pools. The legacy pool stays empty.
    {
      std::lock_guard<std::mutex> lock(mu_);
      pipeline_counters_.batch_size_counts.assign(
          std::max<size_t>(1, config_.pipeline.max_batch) + 1, 0);
    }
    intersect_q_ = std::make_unique<StageQueue>(
        config_.pipeline.stage_queue_capacity);
    score_q_ =
        std::make_unique<StageQueue>(config_.pipeline.stage_queue_capacity);
    uint32_t parse = ResolveParseWorkers(config_.pipeline);
    uint32_t intersect = ResolveIntersectWorkers(config_);
    uint32_t score = ResolveScoreWorkers(config_.pipeline);
    parse_workers_.reserve(parse);
    for (uint32_t i = 0; i < parse; ++i) {
      parse_workers_.emplace_back([this] { ParseLoop(); });
    }
    intersect_workers_.reserve(intersect);
    for (uint32_t i = 0; i < intersect; ++i) {
      intersect_workers_.emplace_back([this] { IntersectLoop(); });
    }
    score_workers_.reserve(score);
    for (uint32_t i = 0; i < score; ++i) {
      score_workers_.emplace_back([this] { ScoreLoop(); });
    }
  } else {
    workers_.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(); }

void QueryExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // join_mu_ serializes concurrent Shutdown callers (join is not).
  std::lock_guard<std::mutex> jlock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Pipeline drain is strictly upstream-first: parse workers exit once the
  // admission queues are empty (having pushed everything downstream), THEN
  // the intersect queue closes — Pop keeps returning work until the queue
  // is both closed and empty, so nothing queued is dropped — and so on
  // through score. Closing a queue before its producers exit would race
  // Push against Close.
  for (std::thread& w : parse_workers_) {
    if (w.joinable()) w.join();
  }
  if (intersect_q_ != nullptr) intersect_q_->Close();
  for (std::thread& w : intersect_workers_) {
    if (w.joinable()) w.join();
  }
  if (score_q_ != nullptr) score_q_->Close();
  for (std::thread& w : score_workers_) {
    if (w.joinable()) w.join();
  }
  // Unhook the registry export once workers are gone. Removal blocks on
  // any in-flight Snapshot, so after this line no callback can touch this
  // executor — destruction is safe even if the engine's registry outlives
  // us. (Lock order here is join_mu_ -> registry mutex; the callback takes
  // registry mutex -> mu_, never join_mu_, so there is no cycle.)
  if (metrics_callback_ != 0) {
    engine_->metrics_registry().RemoveSampleCallback(metrics_callback_);
    metrics_callback_ = 0;
  }
}

std::future<Result<SearchResult>> QueryExecutor::Enqueue(
    ContextQuery query, EvaluationMode mode, std::string_view tenant,
    bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  size_t t = admission_.TenantIndex(tenant);
  if (block) {
    not_full_.wait(lock,
                   [this, t] { return shutdown_ || admission_.CanAdmit(t); });
  }
  if (shutdown_) {
    lock.unlock();
    std::promise<Result<SearchResult>> p;
    // kUnavailable, not kResourceExhausted: the executor is down, not
    // overloaded — backing off and resubmitting here cannot succeed.
    p.set_value(Status::Unavailable("executor is shut down"));
    return p.get_future();
  }
  Status admitted = admission_.TryAdmit(t);
  if (!admitted.ok()) {
    metrics_.rejected++;
    lock.unlock();
    std::promise<Result<SearchResult>> p;
    p.set_value(std::move(admitted));
    return p.get_future();
  }
  tenant_queues_[t].push_back(Task{std::move(query), mode, {}, {}});
  std::future<Result<SearchResult>> f =
      tenant_queues_[t].back().promise.get_future();
  metrics_.submitted++;
  metrics_.max_queue_depth =
      std::max(metrics_.max_queue_depth, admission_.total_depth());
  lock.unlock();
  not_empty_.notify_one();
  return f;
}

std::future<Result<SearchResult>> QueryExecutor::SubmitSearch(
    ContextQuery query, EvaluationMode mode, std::string_view tenant) {
  return Enqueue(std::move(query), mode, tenant, /*block=*/false);
}

std::vector<Result<SearchResult>> QueryExecutor::SearchBatch(
    std::span<const ContextQuery> queries, EvaluationMode mode,
    std::string_view tenant) {
  std::vector<std::future<Result<SearchResult>>> futures;
  futures.reserve(queries.size());
  for (const ContextQuery& q : queries) {
    futures.push_back(Enqueue(q, mode, tenant, /*block=*/true));
  }
  std::vector<Result<SearchResult>> results;
  results.reserve(queries.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void QueryExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    double wait_ms;
    size_t tenant;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The dispatch predicate folds in the concurrency limit; shutdown
      // drains regardless of the limit (latency no longer matters, the
      // queues must empty so promises resolve).
      not_empty_.wait(
          lock, [this] { return shutdown_ || admission_.CanDispatch(); });
      if (!admission_.HasRunnable()) return;  // shutdown, queues drained
      tenant = admission_.BeginDispatch();
      task = std::move(tenant_queues_[tenant].front());
      tenant_queues_[tenant].pop_front();
      wait_ms = task.queued.ElapsedMillis();
      metrics_.queue_wait_ms_total += wait_ms;
      metrics_.queue_wait_ms_max =
          std::max(metrics_.queue_wait_ms_max, wait_ms);
    }
    // notify_all: blocked enqueuers wait on *their* tenant's capacity, and
    // this dispatch only made room in one tenant — wake them all and let
    // the predicates sort it out.
    not_full_.notify_all();

    WallTimer exec_timer;
    Result<SearchResult> result =
        engine_->Search(task.query, task.mode, wait_ms);
    double exec_ms = exec_timer.ElapsedMillis();
    double e2e_ms = wait_ms + exec_ms;
    // The engine is the single authority on shedding (its deadline check
    // sees queue wait via elapsed_ms); the executor just classifies the
    // outcome: a kDeadlineExceeded whose deadline was already gone at
    // dispatch is a queue shed, not an execution timeout.
    double deadline_ms = engine_->config().deadline_ms;
    bool shed = deadline_ms > 0.0 && !result.ok() &&
                result.status().code() == StatusCode::kDeadlineExceeded &&
                wait_ms >= deadline_ms;
    {
      // Count completion BEFORE fulfilling the promise: a caller that has
      // observed its future ready must see `completed` include that task.
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.completed++;
      metrics_.exec_ms_total += exec_ms;
      admission_.OnComplete(tenant, e2e_ms, shed);
    }
    // The freed concurrency slot (or an AIMD limit raise) may have made a
    // queued task dispatchable.
    not_empty_.notify_one();
    // Histogram updates are relaxed atomics on cached pointers — outside
    // mu_ by design (see the registry lock-ordering contract).
    if (engine_->metrics_enabled()) {
      queue_wait_hist_->Observe(wait_ms);
      exec_hist_->Observe(exec_ms);
      e2e_hist_->Observe(e2e_ms);
    }
    task.promise.set_value(std::move(result));
  }
}

bool QueryExecutor::StageQueue::Push(PipelineTask task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || q_.size() < capacity_; });
  if (closed_) return false;
  q_.push_back(std::move(task));
  max_depth_ = std::max(max_depth_, q_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool QueryExecutor::StageQueue::Pop(PipelineTask& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;  // closed and drained
  out = std::move(q_.front());
  q_.pop_front();
  lock.unlock();
  not_full_.notify_all();
  return true;
}

bool QueryExecutor::StageQueue::PopBatch(std::vector<PipelineTask>& out,
                                         size_t max_batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;  // closed and drained
  out.push_back(std::move(q_.front()));
  q_.pop_front();
  // Greedy batch formation: sweep the queue ONCE for tasks sharing a term
  // with the head. No waiting for stragglers — batching exploits queues
  // that are already deep (i.e. under load); an idle pipeline degenerates
  // to batch size 1 with zero added latency.
  if (max_batch > 1) {
    // Copied, not referenced: the push_back below can reallocate `out`,
    // which would leave a reference to the head's terms dangling.
    const std::vector<TermId> head_terms = out.front().terms;
    for (auto it = q_.begin(); it != q_.end() && out.size() < max_batch;) {
      if (SharesTerm(head_terms, it->terms)) {
        out.push_back(std::move(*it));
        it = q_.erase(it);
      } else {
        ++it;
      }
    }
  }
  lock.unlock();
  not_full_.notify_all();
  return true;
}

void QueryExecutor::StageQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t QueryExecutor::StageQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

size_t QueryExecutor::StageQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

void QueryExecutor::FinalizeTask(PipelineTask& task,
                                 Result<SearchResult> result) {
  double e2e_ms = task.enqueued.ElapsedMillis();
  double exec_ms = std::max(0.0, e2e_ms - task.admission_wait_ms);
  // Shed classification matches the legacy loop: a kDeadlineExceeded whose
  // deadline was already gone when parse dispatched it is a queue shed.
  double deadline_ms = engine_->config().deadline_ms;
  bool shed = deadline_ms > 0.0 && !result.ok() &&
              result.status().code() == StatusCode::kDeadlineExceeded &&
              task.admission_wait_ms >= deadline_ms;
  {
    // Count completion BEFORE fulfilling the promise: a caller that has
    // observed its future ready must see `completed` include that task.
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.completed++;
    metrics_.exec_ms_total += exec_ms;
    admission_.OnComplete(task.tenant, e2e_ms, shed);
  }
  // The freed inflight slot (or an AIMD limit raise) may have made a
  // queued task dispatchable at the parse stage.
  not_empty_.notify_one();
  if (engine_->metrics_enabled()) {
    queue_wait_hist_->Observe(task.admission_wait_ms);
    exec_hist_->Observe(exec_ms);
    e2e_hist_->Observe(e2e_ms);
  }
  task.promise.set_value(std::move(result));
}

void QueryExecutor::ParseLoop() {
  for (;;) {
    Task task;
    double wait_ms;
    size_t tenant;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Same dispatch head as the legacy loop: weighted-fair pick under
      // the admission limit, unconditional drain on shutdown.
      not_empty_.wait(
          lock, [this] { return shutdown_ || admission_.CanDispatch(); });
      if (!admission_.HasRunnable()) return;  // shutdown, queues drained
      tenant = admission_.BeginDispatch();
      task = std::move(tenant_queues_[tenant].front());
      tenant_queues_[tenant].pop_front();
      wait_ms = task.queued.ElapsedMillis();
      metrics_.queue_wait_ms_total += wait_ms;
      metrics_.queue_wait_ms_max =
          std::max(metrics_.queue_wait_ms_max, wait_ms);
    }
    not_full_.notify_all();

    WallTimer busy;
    PipelineTask pt;
    pt.tenant = tenant;
    pt.admission_wait_ms = wait_ms;
    pt.enqueued = task.queued;
    pt.promise = std::move(task.promise);

    Result<std::unique_ptr<PreparedSearch>> prep =
        engine_->BeginSearch(task.query, task.mode, wait_ms);
    Status st = prep.ok() ? engine_->SearchStats(**prep) : prep.status();
    {
      std::lock_guard<std::mutex> lock(mu_);
      pipeline_counters_.parse_processed++;
      pipeline_counters_.parse_busy_ms += busy.ElapsedMillis();
    }
    if (!st.ok()) {
      // Validation errors, pre-execution sheds, and hard stats-phase trips
      // finalize right here — they never occupy downstream queues.
      FinalizeTask(pt, std::move(st));
      continue;
    }
    pt.ps = std::move(*prep);
    // Sorted unique keywords ∪ context: the batching key the intersect
    // stage groups on. Both inputs are sorted (FromKeywords dedups, the
    // context is validated sorted), but re-sorting is cheap and immune to
    // contract drift.
    pt.terms = pt.ps->qstats.keywords;
    pt.terms.insert(pt.terms.end(), pt.ps->query.context.begin(),
                    pt.ps->query.context.end());
    std::sort(pt.terms.begin(), pt.terms.end());
    pt.terms.erase(std::unique(pt.terms.begin(), pt.terms.end()),
                   pt.terms.end());
    pt.staged.Restart();
    // Push blocks while the intersect queue is full: that is the
    // backpressure that keeps admission queues deep and rejection honest.
    // False (queue closed) is unreachable while this producer runs —
    // Shutdown closes the queue only after parse workers join.
    if (!intersect_q_->Push(std::move(pt))) return;
  }
}

void QueryExecutor::IntersectLoop() {
  DecodedBlockArena arena(config_.pipeline.arena_bytes);
  std::vector<PipelineTask> batch;
  for (;;) {
    batch.clear();
    if (!intersect_q_->PopBatch(batch, config_.pipeline.max_batch)) return;
    double batch_wait_ms = 0;
    for (PipelineTask& pt : batch) {
      double w = pt.staged.ElapsedMillis();
      batch_wait_ms += w;
      // Inter-stage wait counts against the query deadline automatically
      // (the ScanGuard wall clock has been running since BeginSearch);
      // NoteStageWait records it for the trip message and the trace.
      engine_->NoteStageWait(*pt.ps, "intersect", w);
    }

    WallTimer busy;
    uint64_t hits0 = arena.hits();
    uint64_t misses0 = arena.misses();
    {
      // One arena scope per batch: every block any member decodes is
      // shared with the rest of the batch, then dropped. Failed members
      // stay in `batch` (their PreparedSearch pins the LiveSet snapshot)
      // until after Clear() — arena keys are raw list pointers, and
      // releasing a snapshot mid-batch could let a concurrent merge free
      // and re-allocate a list at the same address.
      DecodedBlockArena::Scope scope(&arena);
      for (PipelineTask& pt : batch) {
        Status st = engine_->SearchIntersect(*pt.ps);
        if (!st.ok()) {
          pt.failed = true;
          FinalizeTask(pt, std::move(st));
        }
      }
    }
    uint64_t hit_delta = arena.hits() - hits0;
    uint64_t miss_delta = arena.misses() - misses0;
    arena.Clear();

    {
      std::lock_guard<std::mutex> lock(mu_);
      PipelineCounters& c = pipeline_counters_;
      c.intersect_processed += batch.size();
      c.intersect_busy_ms += busy.ElapsedMillis();
      c.intersect_wait_ms += batch_wait_ms;
      c.batches++;
      if (batch.size() >= 2) c.batched_queries += batch.size();
      c.max_batch = std::max(c.max_batch, batch.size());
      if (batch.size() < c.batch_size_counts.size()) {
        c.batch_size_counts[batch.size()]++;
      }
      c.arena_hits += hit_delta;
      c.arena_misses += miss_delta;
    }

    for (PipelineTask& pt : batch) {
      if (pt.failed) continue;
      pt.staged.Restart();
      if (!score_q_->Push(std::move(pt))) return;
    }
  }
}

void QueryExecutor::ScoreLoop() {
  PipelineTask pt;
  while (score_q_->Pop(pt)) {
    double w = pt.staged.ElapsedMillis();
    engine_->NoteStageWait(*pt.ps, "score", w);
    WallTimer busy;
    Result<SearchResult> result = engine_->FinishSearch(*pt.ps);
    {
      std::lock_guard<std::mutex> lock(mu_);
      pipeline_counters_.score_processed++;
      pipeline_counters_.score_busy_ms += busy.ElapsedMillis();
      pipeline_counters_.score_wait_ms += w;
    }
    FinalizeTask(pt, std::move(result));
    pt = PipelineTask{};  // release the PreparedSearch before blocking
  }
}

ExecutorMetrics QueryExecutor::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutorMetrics snapshot = metrics_;
  snapshot.queue_depth = admission_.total_depth();
  return snapshot;
}

PipelineMetrics QueryExecutor::pipeline() const {
  PipelineMetrics m;
  m.enabled = config_.pipeline.enabled;
  if (!m.enabled) return m;
  m.uptime_ms = uptime_.ElapsedMillis();
  m.parse.workers = static_cast<uint32_t>(parse_workers_.size());
  m.intersect.workers = static_cast<uint32_t>(intersect_workers_.size());
  m.score.workers = static_cast<uint32_t>(score_workers_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const PipelineCounters& c = pipeline_counters_;
    m.parse.processed = c.parse_processed;
    m.parse.busy_ms_total = c.parse_busy_ms;
    m.parse.queue_wait_ms_total = metrics_.queue_wait_ms_total;
    m.parse.queue_depth = admission_.total_depth();
    m.parse.max_queue_depth = metrics_.max_queue_depth;
    m.intersect.processed = c.intersect_processed;
    m.intersect.busy_ms_total = c.intersect_busy_ms;
    m.intersect.queue_wait_ms_total = c.intersect_wait_ms;
    m.score.processed = c.score_processed;
    m.score.busy_ms_total = c.score_busy_ms;
    m.score.queue_wait_ms_total = c.score_wait_ms;
    m.batches = c.batches;
    m.batched_queries = c.batched_queries;
    m.max_batch = c.max_batch;
    m.batch_size_counts = c.batch_size_counts;
    m.arena_hits = c.arena_hits;
    m.arena_misses = c.arena_misses;
  }
  m.intersect.queue_depth = intersect_q_->depth();
  m.intersect.max_queue_depth = intersect_q_->max_depth();
  m.score.queue_depth = score_q_->depth();
  m.score.max_queue_depth = score_q_->max_depth();
  return m;
}

AdmissionSnapshot QueryExecutor::admission() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.snapshot();
}

size_t QueryExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.total_depth();
}

}  // namespace csr
