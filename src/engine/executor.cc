#include "engine/executor.h"

#include <algorithm>
#include <utility>

namespace csr {

uint32_t QueryExecutor::ResolveThreads(const ExecutorConfig& config) {
  uint32_t threads = config.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return threads;
}

namespace {

/// No explicit tenants → one default tenant bounded by the legacy
/// queue_capacity knob, which reproduces the old single-queue semantics.
AdmissionConfig ResolveAdmission(const ExecutorConfig& config) {
  AdmissionConfig a = config.admission;
  if (a.tenants.empty()) {
    size_t cap = std::max<size_t>(1, config.queue_capacity);
    a.tenants.push_back(TenantConfig{"default", 1.0, cap});
  }
  return a;
}

}  // namespace

QueryExecutor::QueryExecutor(const ContextSearchEngine* engine,
                             ExecutorConfig config)
    : engine_(engine),
      config_(std::move(config)),
      admission_(ResolveAdmission(config_), ResolveThreads(config_)) {
  uint32_t threads = ResolveThreads(config_);
  tenant_queues_.resize(admission_.num_tenants());

  // Register into the engine's metrics registry before any worker starts:
  // the histograms are cached raw pointers (lock-free updates in
  // WorkerLoop), and the sample callback exports the legacy
  // ExecutorMetrics struct and the admission state — through the locked
  // copy-outs, never a bare field read — under stable executor.* and
  // admission.* names.
  MetricsRegistry& registry = engine_->metrics_registry();
  queue_wait_hist_ = &registry.GetHistogram("executor.queue_wait_ms");
  exec_hist_ = &registry.GetHistogram("executor.exec_ms");
  e2e_hist_ = &registry.GetHistogram("executor.e2e_ms");
  metrics_callback_ = registry.AddSampleCallback([this](MetricsSnapshot& s) {
    ExecutorMetrics m = metrics();  // locked copy-out (takes mu_)
    s.counters["executor.submitted"] = m.submitted;
    s.counters["executor.rejected"] = m.rejected;
    s.counters["executor.completed"] = m.completed;
    s.gauges["executor.queue_depth"] = static_cast<double>(m.queue_depth);
    s.gauges["executor.max_queue_depth"] =
        static_cast<double>(m.max_queue_depth);
    s.gauges["executor.queue_wait_ms_total"] = m.queue_wait_ms_total;
    s.gauges["executor.queue_wait_ms_max"] = m.queue_wait_ms_max;
    s.gauges["executor.exec_ms_total"] = m.exec_ms_total;
    s.gauges["executor.num_threads"] = static_cast<double>(num_threads());

    AdmissionSnapshot a = admission();  // locked copy-out (takes mu_)
    s.counters["admission.admitted"] = a.admitted;
    s.counters["admission.rejected"] = a.rejected;
    s.counters["admission.completed"] = a.completed;
    s.counters["admission.shed"] = a.shed;
    s.counters["admission.limit_increases"] = a.limit_increases;
    s.counters["admission.limit_decreases"] = a.limit_decreases;
    s.gauges["admission.limit"] = static_cast<double>(a.limit);
    s.gauges["admission.inflight"] = static_cast<double>(a.inflight);
    s.gauges["admission.window_p99_ms"] = a.window_p99_ms;
    s.gauges["admission.slo_ms"] = a.slo_ms;
    for (const TenantSnapshot& t : a.tenants) {
      std::string prefix = "admission.tenant." + t.name;
      s.gauges[prefix + ".depth"] = static_cast<double>(t.depth);
      s.gauges[prefix + ".weight"] = t.weight;
      s.counters[prefix + ".admitted"] = t.admitted;
      s.counters[prefix + ".rejected"] = t.rejected;
      s.counters[prefix + ".completed"] = t.completed;
      s.counters[prefix + ".shed"] = t.shed;
    }
  });

  workers_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(); }

void QueryExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // join_mu_ serializes concurrent Shutdown callers (join is not).
  std::lock_guard<std::mutex> jlock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Unhook the registry export once workers are gone. Removal blocks on
  // any in-flight Snapshot, so after this line no callback can touch this
  // executor — destruction is safe even if the engine's registry outlives
  // us. (Lock order here is join_mu_ -> registry mutex; the callback takes
  // registry mutex -> mu_, never join_mu_, so there is no cycle.)
  if (metrics_callback_ != 0) {
    engine_->metrics_registry().RemoveSampleCallback(metrics_callback_);
    metrics_callback_ = 0;
  }
}

std::future<Result<SearchResult>> QueryExecutor::Enqueue(
    ContextQuery query, EvaluationMode mode, std::string_view tenant,
    bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  size_t t = admission_.TenantIndex(tenant);
  if (block) {
    not_full_.wait(lock,
                   [this, t] { return shutdown_ || admission_.CanAdmit(t); });
  }
  if (shutdown_) {
    lock.unlock();
    std::promise<Result<SearchResult>> p;
    // kUnavailable, not kResourceExhausted: the executor is down, not
    // overloaded — backing off and resubmitting here cannot succeed.
    p.set_value(Status::Unavailable("executor is shut down"));
    return p.get_future();
  }
  Status admitted = admission_.TryAdmit(t);
  if (!admitted.ok()) {
    metrics_.rejected++;
    lock.unlock();
    std::promise<Result<SearchResult>> p;
    p.set_value(std::move(admitted));
    return p.get_future();
  }
  tenant_queues_[t].push_back(Task{std::move(query), mode, {}, {}});
  std::future<Result<SearchResult>> f =
      tenant_queues_[t].back().promise.get_future();
  metrics_.submitted++;
  metrics_.max_queue_depth =
      std::max(metrics_.max_queue_depth, admission_.total_depth());
  lock.unlock();
  not_empty_.notify_one();
  return f;
}

std::future<Result<SearchResult>> QueryExecutor::SubmitSearch(
    ContextQuery query, EvaluationMode mode, std::string_view tenant) {
  return Enqueue(std::move(query), mode, tenant, /*block=*/false);
}

std::vector<Result<SearchResult>> QueryExecutor::SearchBatch(
    std::span<const ContextQuery> queries, EvaluationMode mode,
    std::string_view tenant) {
  std::vector<std::future<Result<SearchResult>>> futures;
  futures.reserve(queries.size());
  for (const ContextQuery& q : queries) {
    futures.push_back(Enqueue(q, mode, tenant, /*block=*/true));
  }
  std::vector<Result<SearchResult>> results;
  results.reserve(queries.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void QueryExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    double wait_ms;
    size_t tenant;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The dispatch predicate folds in the concurrency limit; shutdown
      // drains regardless of the limit (latency no longer matters, the
      // queues must empty so promises resolve).
      not_empty_.wait(
          lock, [this] { return shutdown_ || admission_.CanDispatch(); });
      if (!admission_.HasRunnable()) return;  // shutdown, queues drained
      tenant = admission_.BeginDispatch();
      task = std::move(tenant_queues_[tenant].front());
      tenant_queues_[tenant].pop_front();
      wait_ms = task.queued.ElapsedMillis();
      metrics_.queue_wait_ms_total += wait_ms;
      metrics_.queue_wait_ms_max =
          std::max(metrics_.queue_wait_ms_max, wait_ms);
    }
    // notify_all: blocked enqueuers wait on *their* tenant's capacity, and
    // this dispatch only made room in one tenant — wake them all and let
    // the predicates sort it out.
    not_full_.notify_all();

    WallTimer exec_timer;
    Result<SearchResult> result =
        engine_->Search(task.query, task.mode, wait_ms);
    double exec_ms = exec_timer.ElapsedMillis();
    double e2e_ms = wait_ms + exec_ms;
    // The engine is the single authority on shedding (its deadline check
    // sees queue wait via elapsed_ms); the executor just classifies the
    // outcome: a kDeadlineExceeded whose deadline was already gone at
    // dispatch is a queue shed, not an execution timeout.
    double deadline_ms = engine_->config().deadline_ms;
    bool shed = deadline_ms > 0.0 && !result.ok() &&
                result.status().code() == StatusCode::kDeadlineExceeded &&
                wait_ms >= deadline_ms;
    {
      // Count completion BEFORE fulfilling the promise: a caller that has
      // observed its future ready must see `completed` include that task.
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.completed++;
      metrics_.exec_ms_total += exec_ms;
      admission_.OnComplete(tenant, e2e_ms, shed);
    }
    // The freed concurrency slot (or an AIMD limit raise) may have made a
    // queued task dispatchable.
    not_empty_.notify_one();
    // Histogram updates are relaxed atomics on cached pointers — outside
    // mu_ by design (see the registry lock-ordering contract).
    if (engine_->metrics_enabled()) {
      queue_wait_hist_->Observe(wait_ms);
      exec_hist_->Observe(exec_ms);
      e2e_hist_->Observe(e2e_ms);
    }
    task.promise.set_value(std::move(result));
  }
}

ExecutorMetrics QueryExecutor::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecutorMetrics snapshot = metrics_;
  snapshot.queue_depth = admission_.total_depth();
  return snapshot;
}

AdmissionSnapshot QueryExecutor::admission() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.snapshot();
}

size_t QueryExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.total_depth();
}

}  // namespace csr
