#ifndef CSR_ENGINE_TOP_K_H_
#define CSR_ENGINE_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "engine/query.h"

namespace csr {

/// Bounded top-K collector: keeps the K best (score, doc) entries seen so
/// far in a min-heap. Ties break toward smaller docids so rankings are
/// fully deterministic.
class TopKCollector {
 public:
  explicit TopKCollector(size_t k) : k_(k) {}

  void Offer(DocId doc, double score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({doc, score});
      std::push_heap(heap_.begin(), heap_.end(), Worse);
      return;
    }
    if (Better(SearchResultEntry{doc, score}, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Worse);
      heap_.back() = {doc, score};
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    }
  }

  /// Extracts the collected entries, best first. The collector is emptied.
  std::vector<SearchResultEntry> Take() {
    std::vector<SearchResultEntry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(),
              [](const SearchResultEntry& a, const SearchResultEntry& b) {
                return Better(a, b);
              });
    return out;
  }

  size_t size() const { return heap_.size(); }

 private:
  static bool Better(const SearchResultEntry& a, const SearchResultEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }
  /// Heap comparator: the *worst* entry must surface at front.
  static bool Worse(const SearchResultEntry& a, const SearchResultEntry& b) {
    return Better(a, b);
  }

  size_t k_;
  std::vector<SearchResultEntry> heap_;
};

}  // namespace csr

#endif  // CSR_ENGINE_TOP_K_H_
