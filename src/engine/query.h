#ifndef CSR_ENGINE_QUERY_H_
#define CSR_ENGINE_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/cost_model.h"
#include "stats/statistics.h"
#include "util/types.h"

namespace csr {

class QueryTrace;  // obs/trace.h

/// A context-sensitive query Q_c = Q_k | P (Section 2.1): conventional
/// keywords plus a conjunctive context specification over predicate terms.
struct ContextQuery {
  ContextQuery() = default;
  ContextQuery(std::vector<TermId> k, TermIdSet p, YearRange y = {})
      : keywords(std::move(k)), context(std::move(p)), years(y) {}

  /// Q_k: content keywords (may repeat; repetition feeds tq).
  std::vector<TermId> keywords;

  /// P: sorted, deduplicated context predicates. Empty means "whole
  /// collection".
  TermIdSet context;

  /// Optional time restriction (Section 7 extension): when active, the
  /// context (and the result set) is limited to documents published within
  /// the inclusive range.
  YearRange years;
};

/// How the engine evaluates a query:
///  - kConventional: the paper's baseline Q_t = Q_k ∪ P. P filters the
///    result set but contributes nothing to scores; statistics come from
///    the whole collection (precomputed at indexing time).
///  - kContextStraightforward: context-sensitive ranking, statistics
///    computed online by the Figure 3 plan (intersections + aggregations).
///  - kContextWithViews: context-sensitive ranking, statistics from the
///    smallest usable materialized view, falling back to query-time
///    computation for uncovered keywords, and to the straightforward plan
///    when no view covers P.
enum class EvaluationMode {
  kConventional,
  kContextStraightforward,
  kContextWithViews,
};

std::string_view EvaluationModeName(EvaluationMode mode);

struct SearchResultEntry {
  DocId doc = kInvalidDocId;
  double score = 0.0;
};

/// Per-query execution metrics, used by the Figure 7/8 benches.
struct SearchMetrics {
  double total_ms = 0.0;
  double stats_ms = 0.0;      // collection-statistics phase
  double retrieval_ms = 0.0;  // conjunction + scoring phase
  bool used_view = false;
  /// The statistics came from an adaptively materialized view (online
  /// selection cache) rather than the offline catalog. Implies used_view.
  bool used_adaptive_view = false;
  bool fell_back_to_straightforward = false;
  bool stats_cache_hit = false;
  uint64_t view_tuples_scanned = 0;
  uint32_t keywords_uncovered_by_view = 0;
  CostCounters cost;

  /// True when the engine could not execute the ideal plan and degraded
  /// rather than fail: the view it would have used was quarantined at
  /// snapshot load, the context-statistics phase blew its deadline or
  /// posting budget (statistics degrade to global), or retrieval stopped
  /// early (top-k is a partial ranking of the documents seen so far).
  /// `degraded_reason` says which. Degraded results are well-formed and
  /// safe to serve; callers that prefer failure set
  /// EngineConfig::degrade_gracefully = false.
  bool degraded = false;
  std::string degraded_reason;

  /// Human-readable description of the executed plan (EXPLAIN-style).
  std::string plan;
};

struct SearchResult {
  /// Top-K documents, best first (score desc, docid asc on ties).
  std::vector<SearchResultEntry> top_docs;

  /// Total number of matching documents (the unranked result size).
  uint64_t result_count = 0;

  /// The collection statistics the ranking actually used.
  CollectionStats stats;

  SearchMetrics metrics;

  /// Span tree for this query, present only when the query was
  /// trace-sampled (EngineConfig::trace_sample_rate). Immutable once
  /// Search returns; serialize with QueryTrace::ToJson().
  std::shared_ptr<const QueryTrace> trace;
};

}  // namespace csr

#endif  // CSR_ENGINE_QUERY_H_
