#include "engine/merger.h"

#include <chrono>

#include "engine/engine.h"

namespace csr {

SegmentMerger::SegmentMerger(ContextSearchEngine* engine, double interval_ms)
    : engine_(engine),
      interval_ms_(interval_ms <= 0.0 ? 1.0 : interval_ms),
      thread_([this] { Run(); }) {}

SegmentMerger::~SegmentMerger() { Stop(); }

void SegmentMerger::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SegmentMerger::Run() {
  const auto interval = std::chrono::duration<double, std::milli>(interval_ms_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    bool merged = engine_->MergeOnce();
    if (merged) merges_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    if (merged) continue;  // cascade: re-check the policy immediately
    cv_.wait_for(lock, interval, [this] { return stop_; });
  }
}

}  // namespace csr
