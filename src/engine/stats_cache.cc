#include "engine/stats_cache.h"

namespace csr {

TermIdSet StatsCache::MakeKey(std::span<const TermId> context,
                              std::span<const TermId> keywords,
                              YearRange range) {
  // Context and keywords are separated by a sentinel that can appear in
  // neither, so (ctx={1}, kw={2}) and (ctx={1,2}, kw={}) cannot collide;
  // the year range is appended the same way.
  TermIdSet key;
  key.reserve(context.size() + keywords.size() + 3);
  key.insert(key.end(), context.begin(), context.end());
  key.push_back(kInvalidTermId);
  key.insert(key.end(), keywords.begin(), keywords.end());
  if (range.active()) {
    key.push_back(kInvalidTermId);
    key.push_back(range.min_year);
    key.push_back(range.max_year);
  }
  return key;
}

const CollectionStats* StatsCache::Get(std::span<const TermId> context,
                                       std::span<const TermId> keywords,
                                       YearRange range) {
  if (capacity_ == 0) return nullptr;
  TermIdSet key = MakeKey(context, keywords, range);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return &it->second->second;
}

void StatsCache::Put(std::span<const TermId> context,
                     std::span<const TermId> keywords, YearRange range,
                     CollectionStats stats) {
  if (capacity_ == 0) return;
  TermIdSet key = MakeKey(context, keywords, range);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(stats);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(stats));
  map_[std::move(key)] = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void StatsCache::Clear() {
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace csr
