#include "engine/stats_cache.h"

#include <algorithm>

namespace csr {

StatsCache::StatsCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  if (num_shards == 0) num_shards = kDefaultShards;
  // Clamp to [1, capacity] for ANY requested count, not just the auto-pick:
  // the total capacity is distributed across shards, so num_shards >
  // capacity would leave zero-capacity shards whose Put silently drops
  // every entry that hashes to them.
  num_shards_ =
      std::max<size_t>(1, std::min(num_shards, std::max<size_t>(capacity, 1)));
  shards_ = std::make_unique<Shard[]>(num_shards_);
  // Distribute the total capacity; the first (capacity % shards) shards
  // take one extra entry so the shard capacities sum to `capacity`.
  size_t base = capacity_ / num_shards_;
  size_t extra = capacity_ % num_shards_;
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].capacity = base + (i < extra ? 1 : 0);
  }
}

TermIdSet StatsCache::MakeKey(std::span<const TermId> context,
                              std::span<const TermId> keywords,
                              YearRange range, uint64_t epoch) {
  // Context and keywords are separated by a sentinel that can appear in
  // neither, so (ctx={1}, kw={2}) and (ctx={1,2}, kw={}) cannot collide;
  // the year range and the live-set epoch are appended the same way.
  TermIdSet key;
  key.reserve(context.size() + keywords.size() + 6);
  key.insert(key.end(), context.begin(), context.end());
  key.push_back(kInvalidTermId);
  key.insert(key.end(), keywords.begin(), keywords.end());
  if (range.active()) {
    key.push_back(kInvalidTermId);
    key.push_back(range.min_year);
    key.push_back(range.max_year);
  }
  if (epoch != 0) {
    key.push_back(kInvalidTermId);
    key.push_back(static_cast<TermId>(epoch & 0xFFFFFFFFu));
    key.push_back(static_cast<TermId>(epoch >> 32));
  }
  return key;
}

std::optional<CollectionStats> StatsCache::Get(
    std::span<const TermId> context, std::span<const TermId> keywords,
    YearRange range, uint64_t epoch) {
  if (capacity_ == 0) return std::nullopt;
  TermIdSet key = MakeKey(context, keywords, range, epoch);
  Shard& shard = shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;  // copy out under the lock
}

void StatsCache::Put(std::span<const TermId> context,
                     std::span<const TermId> keywords, YearRange range,
                     CollectionStats stats, uint64_t epoch) {
  if (capacity_ == 0) return;
  TermIdSet key = MakeKey(context, keywords, range, epoch);
  Shard& shard = shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  // The constructor clamps num_shards_ <= capacity_, so every shard has
  // capacity >= 1 whenever the cache is enabled.
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = std::move(stats);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(stats));
  shard.map[std::move(key)] = shard.lru.begin();
  if (shard.map.size() > shard.capacity) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

size_t StatsCache::size() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

uint64_t StatsCache::hits() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].hits;
  }
  return total;
}

uint64_t StatsCache::misses() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].misses;
  }
  return total;
}

uint64_t StatsCache::evictions() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].evictions;
  }
  return total;
}

size_t StatsCache::shard_size(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].map.size();
}

size_t StatsCache::shard_capacity(size_t shard) const {
  return shards_[shard].capacity;
}

uint64_t StatsCache::shard_hits(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].hits;
}

uint64_t StatsCache::shard_misses(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].misses;
}

uint64_t StatsCache::shard_evictions(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].evictions;
}

void StatsCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].lru.clear();
    shards_[i].map.clear();
    shards_[i].hits = 0;
    shards_[i].misses = 0;
    shards_[i].evictions = 0;
  }
}

}  // namespace csr
