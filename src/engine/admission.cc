#include "engine/admission.h"

#include <algorithm>
#include <cmath>

namespace csr {

namespace {

std::vector<double> LatencyBounds() {
  std::span<const double> b = MetricsRegistry::DefaultLatencyBucketsMs();
  return std::vector<double>(b.begin(), b.end());
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config,
                                         uint32_t num_threads)
    : config_(std::move(config)), window_hist_(LatencyBounds()) {
  if (config_.tenants.empty()) {
    config_.tenants.push_back(TenantConfig{"default", 1.0, 256});
  }
  tenants_.reserve(config_.tenants.size());
  for (TenantConfig& tc : config_.tenants) {
    if (!(tc.weight > 0.0)) tc.weight = 1.0;
    if (tc.queue_capacity == 0) tc.queue_capacity = 1;
    Tenant t;
    t.config = tc;
    tenants_.push_back(std::move(t));
  }
  if (config_.min_concurrency == 0) config_.min_concurrency = 1;
  max_limit_ = config_.max_concurrency != 0 ? config_.max_concurrency
                                            : std::max(1u, num_threads);
  if (max_limit_ < config_.min_concurrency) {
    max_limit_ = config_.min_concurrency;
  }
  if (config_.adapt_interval == 0) config_.adapt_interval = 1;
  if (config_.decrease_factor <= 0.0 || config_.decrease_factor >= 1.0) {
    config_.decrease_factor = 0.7;
  }
  // Start wide open; the limiter only pulls back on observed SLO misses.
  limit_ = max_limit_;
  window_base_.assign(window_hist_.bounds().size() + 1, 0);
}

size_t AdmissionController::TenantIndex(std::string_view name) const {
  if (name.empty()) return 0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].config.name == name) return i;
  }
  return 0;
}

bool AdmissionController::CanAdmit(size_t t) const {
  return tenants_[t].finish_tags.size() < tenants_[t].config.queue_capacity;
}

Status AdmissionController::TryAdmit(size_t t) {
  Tenant& tenant = tenants_[t];
  if (tenant.finish_tags.size() >= tenant.config.queue_capacity) {
    tenant.rejected++;
    // Backoff hint: the backlog ahead of a resubmission, divided by the
    // current service rate (limit workers, EWMA ms each). Clamped so a
    // cold EWMA or a huge backlog still yields a sane hint.
    double per_query_ms = ewma_e2e_ms_ > 0.0 ? ewma_e2e_ms_ : 1.0;
    double hint = static_cast<double>(tenant.finish_tags.size() + 1) *
                  per_query_ms / static_cast<double>(std::max(1u, limit_));
    hint = std::clamp(hint, 1.0, 1000.0);
    return Status::ResourceExhaustedWithRetry(
        "tenant '" + tenant.config.name + "' queue full (" +
            std::to_string(tenant.config.queue_capacity) +
            " queries queued); retry after backoff",
        hint);
  }
  double start = std::max(virtual_time_, tenant.last_finish);
  double finish = start + 1.0 / tenant.config.weight;
  tenant.finish_tags.push_back(finish);
  tenant.last_finish = finish;
  tenant.admitted++;
  return Status::OK();
}

bool AdmissionController::HasRunnable() const {
  for (const Tenant& t : tenants_) {
    if (!t.finish_tags.empty()) return true;
  }
  return false;
}

bool AdmissionController::CanDispatch() const {
  return inflight_ < limit_ && HasRunnable();
}

size_t AdmissionController::BeginDispatch() {
  size_t best = tenants_.size();
  double best_tag = 0.0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const std::deque<double>& tags = tenants_[i].finish_tags;
    if (tags.empty()) continue;
    if (best == tenants_.size() || tags.front() < best_tag) {
      best = i;
      best_tag = tags.front();
    }
  }
  tenants_[best].finish_tags.pop_front();
  virtual_time_ = std::max(virtual_time_, best_tag);
  inflight_++;
  return best;
}

void AdmissionController::OnComplete(size_t t, double e2e_ms, bool shed) {
  if (inflight_ > 0) inflight_--;
  tenants_[t].completed++;
  completed_++;
  if (shed) {
    tenants_[t].shed++;
    shed_++;
  }
  ewma_e2e_ms_ =
      ewma_e2e_ms_ == 0.0 ? e2e_ms : 0.9 * ewma_e2e_ms_ + 0.1 * e2e_ms;
  if (config_.slo_ms <= 0.0) return;
  window_hist_.Observe(e2e_ms);
  if (++window_completed_ >= config_.adapt_interval) StepLimiter();
}

void AdmissionController::StepLimiter() {
  // Windowed p99 from bucket-count deltas against the window baseline —
  // the same machinery MetricsSnapshot uses, so the limiter's view matches
  // what `.metrics` reports.
  std::vector<uint64_t> counts = window_hist_.bucket_counts();
  uint64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i] - window_base_[i];
  }
  if (total == 0) {
    window_completed_ = 0;
    return;
  }
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(0.99 * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  const std::vector<double>& bounds = window_hist_.bounds();
  uint64_t seen = 0;
  double p99 = bounds.back();  // overflow bucket reports the top bound
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i] - window_base_[i];
    if (seen >= rank) {
      p99 = i < bounds.size() ? bounds[i] : bounds.back() * 2.0;
      break;
    }
  }
  window_p99_ms_ = p99;
  if (p99 > config_.slo_ms) {
    uint32_t next = static_cast<uint32_t>(
        std::floor(static_cast<double>(limit_) * config_.decrease_factor));
    next = std::max(next, config_.min_concurrency);
    if (next < limit_) {
      limit_ = next;
      limit_decreases_++;
    }
  } else if (limit_ < max_limit_) {
    limit_++;
    limit_increases_++;
  }
  window_base_ = std::move(counts);
  window_completed_ = 0;
}

size_t AdmissionController::total_depth() const {
  size_t depth = 0;
  for (const Tenant& t : tenants_) depth += t.finish_tags.size();
  return depth;
}

AdmissionSnapshot AdmissionController::snapshot() const {
  AdmissionSnapshot s;
  s.tenants.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    TenantSnapshot ts;
    ts.name = t.config.name;
    ts.weight = t.config.weight;
    ts.queue_capacity = t.config.queue_capacity;
    ts.depth = t.finish_tags.size();
    ts.admitted = t.admitted;
    ts.rejected = t.rejected;
    ts.completed = t.completed;
    ts.shed = t.shed;
    s.admitted += t.admitted;
    s.rejected += t.rejected;
    s.tenants.push_back(std::move(ts));
  }
  s.limit = limit_;
  s.inflight = inflight_;
  s.completed = completed_;
  s.shed = shed_;
  s.limit_increases = limit_increases_;
  s.limit_decreases = limit_decreases_;
  s.window_p99_ms = window_p99_ms_;
  s.slo_ms = config_.slo_ms;
  return s;
}

}  // namespace csr
