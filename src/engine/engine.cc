#include "engine/engine.h"

#include <algorithm>
#include <unordered_set>

#include "engine/top_k.h"
#include "index/intersection.h"
#include "util/hash.h"
#include "util/timer.h"

namespace csr {

std::string_view EvaluationModeName(EvaluationMode mode) {
  switch (mode) {
    case EvaluationMode::kConventional:
      return "conventional";
    case EvaluationMode::kContextStraightforward:
      return "context-straightforward";
    case EvaluationMode::kContextWithViews:
      return "context-with-views";
  }
  return "unknown";
}

Result<std::unique_ptr<ContextSearchEngine>> ContextSearchEngine::Build(
    Corpus corpus, EngineConfig config) {
  if (corpus.docs.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  auto engine = std::unique_ptr<ContextSearchEngine>(new ContextSearchEngine());
  engine->corpus_ = std::move(corpus);
  engine->config_ = config;
  engine->ranking_ = MakeRankingFunction(config.ranking);
  if (engine->ranking_ == nullptr) {
    return Status::InvalidArgument("unknown ranking function: " +
                                   config.ranking);
  }
  if (engine->ranking_->NeedsTermCounts() && !config.track_tc) {
    return Status::InvalidArgument(
        "ranking function '" + config.ranking +
        "' needs tc statistics; set EngineConfig::track_tc");
  }

  // Content and predicate indexes.
  IndexBuilder content_builder(config.segment_size);
  IndexBuilder predicate_builder(config.segment_size);
  for (const Document& d : engine->corpus_.docs) {
    CSR_RETURN_NOT_OK(content_builder.AddDocument(d.id, d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(d.id, d.annotations));
  }
  engine->content_index_ = content_builder.Build();
  engine->predicate_index_ = predicate_builder.Build();
  return Finish(std::move(engine));
}

Result<std::unique_ptr<ContextSearchEngine>>
ContextSearchEngine::BuildWithIndexes(Corpus corpus, EngineConfig config,
                                      InvertedIndex content_index,
                                      InvertedIndex predicate_index) {
  if (corpus.docs.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  if (content_index.num_docs() != corpus.docs.size() ||
      predicate_index.num_docs() != corpus.docs.size()) {
    return Status::InvalidArgument(
        "indexes cover " + std::to_string(content_index.num_docs()) + "/" +
        std::to_string(predicate_index.num_docs()) +
        " documents but the corpus has " + std::to_string(corpus.docs.size()));
  }
  auto engine = std::unique_ptr<ContextSearchEngine>(new ContextSearchEngine());
  engine->corpus_ = std::move(corpus);
  engine->config_ = config;
  engine->ranking_ = MakeRankingFunction(config.ranking);
  if (engine->ranking_ == nullptr) {
    return Status::InvalidArgument("unknown ranking function: " +
                                   config.ranking);
  }
  if (engine->ranking_->NeedsTermCounts() && !config.track_tc) {
    return Status::InvalidArgument(
        "ranking function '" + config.ranking +
        "' needs tc statistics; set EngineConfig::track_tc");
  }
  engine->content_index_ = std::move(content_index);
  engine->predicate_index_ = std::move(predicate_index);
  return Finish(std::move(engine));
}

Result<std::unique_ptr<ContextSearchEngine>> ContextSearchEngine::Finish(
    std::unique_ptr<ContextSearchEngine> engine) {
  const EngineConfig& config = engine->config_;
  if (config.compressed_postings) engine->CompactIndexes();

  engine->years_.reserve(engine->corpus_.docs.size());
  for (const Document& d : engine->corpus_.docs) {
    engine->years_.push_back(d.year);
  }

  engine->context_threshold_ = static_cast<uint64_t>(
      config.context_threshold_fraction *
      static_cast<double>(engine->corpus_.docs.size()));
  if (engine->context_threshold_ == 0) engine->context_threshold_ = 1;

  engine->tracked_ = TrackedKeywords::Select(
      engine->content_index_, engine->context_threshold_, config.tracked_cap);
  engine->param_table_ = std::make_unique<DocParamTable>(
      DocParamTable::Build(engine->content_index_, engine->tracked_));
  engine->estimator_ = std::make_unique<ViewSizeEstimator>(
      &engine->corpus_, /*seed=*/engine->corpus_.config.seed ^ 0x5EED,
      config.estimator_sample);
  engine->atm_ = std::make_unique<AtmMapper>(&engine->corpus_,
                                             &engine->content_index_,
                                             &engine->predicate_index_);
  if (config.stats_cache_capacity > 0) {
    engine->stats_cache_ =
        std::make_unique<StatsCache>(config.stats_cache_capacity);
  }
  return engine;
}

void ContextSearchEngine::CompactIndexes() {
  content_index_.Compact(/*block_size=*/0, config_.codec_policy);
  predicate_index_.Compact(/*block_size=*/0, config_.codec_policy);
  catalog_.CompactAll();
}

uint64_t ContextSearchEngine::ContextSize(
    std::span<const TermId> context) const {
  std::vector<PostingCursor> cursors;
  cursors.reserve(context.size());
  for (TermId m : context) {
    PostingCursor c = predicate_index_.cursor(m);
    if (!c.valid()) return 0;
    cursors.push_back(std::move(c));
  }
  return CountIntersection(std::move(cursors));
}

Status ContextSearchEngine::SelectAndMaterializeViews() {
  TransactionDb db = TransactionDb::FromCorpus(corpus_);
  Kag kag = Kag::Build(db, context_threshold_, context_threshold_);
  SupportFn support = MakeIndexSupportFn(predicate_index_);

  HybridConfig hconfig;
  hconfig.thresholds.context_threshold = context_threshold_;
  hconfig.thresholds.view_size_threshold = config_.view_size_threshold;
  selection_ = SelectViewsHybrid(db, kag, *estimator_, support, hconfig);

  // Deduplicate identical keyword sets produced by different branches.
  std::unordered_set<uint64_t> seen;
  std::vector<ViewDefinition> defs;
  for (ViewDefinition& v : selection_.views) {
    uint64_t h = HashTermIds(v.keyword_columns);
    if (seen.insert(h).second) defs.push_back(std::move(v));
  }
  selection_.views.clear();
  return MaterializeViews(std::move(defs));
}

Status ContextSearchEngine::MaterializeViews(std::vector<ViewDefinition> defs) {
  ViewParamOptions params;
  params.track_df = true;
  params.track_tc = config_.track_tc;
  params.year_bucket_size = config_.view_year_bucket;
  ViewBuilder builder(&corpus_, param_table_.get(), params,
                      static_cast<uint32_t>(tracked_.size()));
  std::vector<MaterializedView> views = builder.BuildAll(defs);
  catalog_ = ViewCatalog();
  for (MaterializedView& v : views) catalog_.Add(std::move(v));
  if (config_.compressed_postings) catalog_.CompactAll();
  return Status::OK();
}

Status ContextSearchEngine::AppendDocuments(std::vector<Document> docs) {
  if (docs.empty()) return Status::OK();
  DocId first_new = static_cast<DocId>(corpus_.docs.size());

  DocId next = first_new;
  for (Document& d : docs) {
    d.id = next++;
    std::sort(d.annotations.begin(), d.annotations.end());
    d.annotations.erase(
        std::unique(d.annotations.begin(), d.annotations.end()),
        d.annotations.end());
    corpus_.docs.push_back(std::move(d));
  }

  // Rebuild the inverted indexes over the grown collection. (A segmented
  // index would avoid the rebuild; the view maintenance below is the part
  // this library makes incremental, because selection + materialized
  // aggregates are the expensive artifacts.)
  IndexBuilder content_builder(config_.segment_size);
  IndexBuilder predicate_builder(config_.segment_size);
  for (const Document& d : corpus_.docs) {
    CSR_RETURN_NOT_OK(content_builder.AddDocument(d.id, d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(d.id, d.annotations));
  }
  content_index_ = content_builder.Build();
  predicate_index_ = predicate_builder.Build();
  if (config_.compressed_postings) {
    content_index_.Compact(/*block_size=*/0, config_.codec_policy);
    predicate_index_.Compact(/*block_size=*/0, config_.codec_policy);
  }

  years_.clear();
  years_.reserve(corpus_.docs.size());
  for (const Document& d : corpus_.docs) years_.push_back(d.year);

  // tracked_ is intentionally NOT recomputed: view parameter columns are
  // slot-aligned to it. The param table must cover the new documents.
  param_table_ = std::make_unique<DocParamTable>(
      DocParamTable::Build(content_index_, tracked_));
  estimator_ = std::make_unique<ViewSizeEstimator>(
      &corpus_, corpus_.config.seed ^ 0x5EED, config_.estimator_sample);
  atm_ = std::make_unique<AtmMapper>(&corpus_, &content_index_,
                                     &predicate_index_);
  if (stats_cache_ != nullptr) stats_cache_->Clear();

  // Incremental view maintenance: fold only the new documents.
  if (catalog_.size() > 0) {
    std::vector<MaterializedView> views = catalog_.Release();
    ViewParamOptions params;
    params.track_df = true;
    params.track_tc = config_.track_tc;
    params.year_bucket_size = config_.view_year_bucket;
    ViewBuilder builder(&corpus_, param_table_.get(), params,
                        static_cast<uint32_t>(tracked_.size()));
    builder.UpdateAll(views, first_new);
    for (MaterializedView& v : views) catalog_.Add(std::move(v));
    if (config_.compressed_postings) catalog_.CompactAll();
  }
  return Status::OK();
}

Status ContextSearchEngine::InstallCatalog(
    ViewCatalog catalog, const std::vector<TermId>& tracked_terms) {
  if (tracked_terms != tracked_.terms()) {
    return Status::FailedPrecondition(
        "snapshot tracked keywords do not match this engine's; was the "
        "EngineConfig changed since the snapshot was taken?");
  }
  degradation_.views_quarantined += catalog.quarantined().size();
  catalog_ = std::move(catalog);
  if (config_.compressed_postings) catalog_.CompactAll();
  return Status::OK();
}

CollectionStats ContextSearchEngine::ComputeContextStats(
    const ContextQuery& query, const QueryStats& qstats, bool with_views,
    SearchMetrics& metrics, ScanGuard* guard) const {
  bool need_tc = ranking_->NeedsTermCounts();

  auto straightforward_plan = [&](std::string_view reason) {
    metrics.plan = "stats: straightforward (Figure 3): gamma over ";
    metrics.plan += std::to_string(query.context.size());
    metrics.plan += "-way context intersection + ";
    metrics.plan += std::to_string(qstats.keywords.size());
    metrics.plan += " per-keyword intersections";
    if (!reason.empty()) {
      metrics.plan += " [";
      metrics.plan += reason;
      metrics.plan += "]";
    }
  };

  if (!with_views) {
    straightforward_plan("");
    return StraightforwardCollectionStats(
        content_index_, predicate_index_, query.context, qstats.keywords,
        need_tc, &metrics.cost, years_, query.years, guard);
  }

  const MaterializedView* view = catalog_.FindBest(query.context);
  if (view == nullptr ||
      (query.years.active() && !view->RangeAnswerable(query.years))) {
    metrics.fell_back_to_straightforward = true;
    std::string reason = view == nullptr
                             ? "fallback: no usable view"
                             : "fallback: year range not bucket-aligned";
    if (view == nullptr) {
      // Attribute the miss when the covering view was dropped at snapshot
      // load: the fallback is then a degradation, not a planning choice.
      const QuarantinedView* q =
          catalog_.FindQuarantinedCovering(query.context);
      if (q != nullptr) {
        metrics.degraded = true;
        metrics.degraded_reason =
            "view for this context was quarantined at load (" + q->reason +
            "); answered by the straightforward plan";
        reason = "fallback: covering view quarantined";
        degradation_.quarantine_fallbacks++;
      }
    }
    straightforward_plan(reason);
    return StraightforwardCollectionStats(
        content_index_, predicate_index_, query.context, qstats.keywords,
        need_tc, &metrics.cost, years_, query.years, guard);
  }

  metrics.used_view = true;
  metrics.plan = "stats: view scan over V_K (|K|=" +
                 std::to_string(view->def().num_columns()) + ", " +
                 std::to_string(view->NumTuples()) + " tuples)";
  MaterializedView::StatsResult vr = view->ComputeStats(
      query.context, qstats.keywords, tracked_, &metrics.cost, query.years);
  metrics.view_tuples_scanned = metrics.cost.view_tuples_scanned;

  CollectionStats stats;
  stats.cardinality = vr.cardinality;
  stats.total_length = vr.total_length;
  stats.df.resize(qstats.keywords.size(), 0);
  if (need_tc) stats.tc.resize(qstats.keywords.size(), 0);

  // Keywords without a parameter column (|L_w| < T_C) are computed at
  // query time; their short lists make this cheap (Section 6.2). Cursors
  // are single-pass, so each keyword's conjunction gets a fresh set.
  for (size_t i = 0; i < qstats.keywords.size(); ++i) {
    if (vr.covered[i]) {
      stats.df[i] = vr.df[i];
      if (need_tc) stats.tc[i] = vr.tc[i];
      continue;
    }
    metrics.keywords_uncovered_by_view++;
    std::vector<PostingCursor> cursors;
    cursors.push_back(
        content_index_.cursor(qstats.keywords[i], &metrics.cost));
    if (!cursors.back().valid()) continue;
    bool ok = true;
    for (TermId m : query.context) {
      cursors.push_back(predicate_index_.cursor(m, &metrics.cost));
      if (!cursors.back().valid()) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    uint64_t df = 0;
    uint64_t tc = 0;
    for (ConjunctionIterator it(std::move(cursors), guard); !it.AtEnd();
         it.Next()) {
      if (!query.years.Contains(years_[it.doc()])) continue;
      ++df;
      tc += it.tf(0);
    }
    stats.df[i] = df;
    if (need_tc) stats.tc[i] = tc;
  }
  if (metrics.keywords_uncovered_by_view > 0) {
    metrics.plan += " + " +
                    std::to_string(metrics.keywords_uncovered_by_view) +
                    " query-time df intersection(s) for untracked keywords";
  }
  return stats;
}

namespace {

/// The typed failure for a tripped guard when degradation is disabled (or
/// impossible). Never kInternal: callers branch on the taxonomy.
Status TripStatus(const ScanGuard& guard) {
  switch (guard.trip()) {
    case ScanGuard::Trip::kDeadline:
      return Status::DeadlineExceeded("query " + guard.TripReason());
    case ScanGuard::Trip::kBudget:
      return Status::ResourceExhausted("query " + guard.TripReason());
    case ScanGuard::Trip::kFault:
      return Status::DataLoss("query aborted: " + guard.TripReason());
    case ScanGuard::Trip::kNone:
      break;
  }
  return Status::Internal("TripStatus on untripped guard");
}

}  // namespace

void ContextSearchEngine::RecordTrip(const ScanGuard& guard) const {
  switch (guard.trip()) {
    case ScanGuard::Trip::kDeadline:
      degradation_.deadline_hits++;
      break;
    case ScanGuard::Trip::kBudget:
      degradation_.budget_hits++;
      break;
    case ScanGuard::Trip::kFault:
      degradation_.fault_trips++;
      break;
    case ScanGuard::Trip::kNone:
      break;
  }
}

Result<SearchResult> ContextSearchEngine::Search(const ContextQuery& query,
                                                 EvaluationMode mode,
                                                 double elapsed_ms) const {
  if (query.keywords.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (mode != EvaluationMode::kConventional && query.context.empty()) {
    return Status::InvalidArgument(
        "context-sensitive evaluation requires a context specification");
  }
  if (!std::is_sorted(query.context.begin(), query.context.end())) {
    return Status::InvalidArgument("context predicates must be sorted");
  }
  if (config_.deadline_ms > 0 && elapsed_ms >= config_.deadline_ms) {
    // The deadline expired before execution began (typically in the
    // executor queue). Shed the query instead of starting work it is
    // already too late for; the degradation ladder cannot salvage a query
    // that never ran.
    degradation_.deadline_hits++;
    return Status::DeadlineExceeded(
        "query deadline of " + std::to_string(config_.deadline_ms) +
        " ms consumed before execution (" + std::to_string(elapsed_ms) +
        " ms elapsed in queue)");
  }

  WallTimer total_timer;
  // One guard spans both phases: the deadline clock covers the whole
  // query — including time already spent queued — and the posting budget
  // is re-granted once when the plan degrades.
  ScanGuard guard(config_.deadline_ms, config_.posting_scan_budget,
                  elapsed_ms);
  SearchResult result;
  QueryStats qstats = QueryStats::FromKeywords(query.keywords);

  // Phase 1: collection statistics.
  WallTimer stats_timer;
  switch (mode) {
    case EvaluationMode::kConventional:
      result.stats = GlobalCollectionStats(content_index_, qstats.keywords);
      result.metrics.plan =
          "stats: precomputed global statistics (Qt = Qk ∪ P)";
      break;
    case EvaluationMode::kContextStraightforward:
    case EvaluationMode::kContextWithViews: {
      bool with_views = mode == EvaluationMode::kContextWithViews;
      std::optional<CollectionStats> cached =
          stats_cache_ != nullptr
              ? stats_cache_->Get(query.context, qstats.keywords,
                                  query.years)
              : std::nullopt;
      if (cached.has_value()) {
        result.stats = *std::move(cached);
        result.metrics.stats_cache_hit = true;
        result.metrics.plan = "stats: LRU cache hit";
      } else {
        result.stats = ComputeContextStats(query, qstats, with_views,
                                           result.metrics, &guard);
        if (guard.tripped()) {
          // Degradation rung 2: context statistics are partial, therefore
          // unusable — rank with the (precomputed, exact) global
          // statistics instead of failing or serving garbage.
          RecordTrip(guard);
          if (!config_.degrade_gracefully) return TripStatus(guard);
          result.stats =
              GlobalCollectionStats(content_index_, qstats.keywords);
          result.metrics.degraded = true;
          result.metrics.degraded_reason =
              "context statistics abandoned (" + guard.TripReason() +
              "); ranked with global collection statistics";
          result.metrics.plan += " -> degraded: global statistics";
          guard.Reprieve();
        } else if (stats_cache_ != nullptr) {
          // Only exact statistics enter the cache.
          stats_cache_->Put(query.context, qstats.keywords, query.years,
                            result.stats);
        }
      }
      break;
    }
  }
  result.metrics.stats_ms = stats_timer.ElapsedMillis();

  // Phase 2: retrieval + scoring. The unranked result is the conjunction of
  // all keyword and predicate lists, evaluated most-selective-first with
  // skips (identical across modes — only the statistics differ).
  WallTimer retrieval_timer;
  std::vector<PostingCursor> cursors;
  bool empty_result = false;
  for (TermId w : qstats.keywords) {
    cursors.push_back(content_index_.cursor(w, &result.metrics.cost));
    if (!cursors.back().valid()) empty_result = true;
  }
  for (TermId m : query.context) {
    cursors.push_back(predicate_index_.cursor(m, &result.metrics.cost));
    if (!cursors.back().valid()) empty_result = true;
  }

  bool retrieval_aborted = false;
  if (!empty_result) {
    TopKCollector collector(config_.top_k);
    DocStats dstats;
    dstats.tf.resize(qstats.keywords.size());
    ConjunctionIterator it(std::move(cursors), &guard);
    for (; !it.AtEnd(); it.Next()) {
      if (!query.years.Contains(years_[it.doc()])) continue;
      result.result_count++;
      dstats.doc = it.doc();
      dstats.length = content_index_.doc_length(it.doc());
      for (size_t i = 0; i < qstats.keywords.size(); ++i) {
        dstats.tf[i] = it.tf(i);
      }
      collector.Offer(dstats.doc,
                      ranking_->Score(qstats, dstats, result.stats));
    }
    retrieval_aborted = it.aborted();
    result.top_docs = collector.Take();
  }

  if (retrieval_aborted) {
    // Degradation rung 3: partial top-k over the documents seen so far.
    RecordTrip(guard);
    if (!config_.degrade_gracefully) return TripStatus(guard);
    if (result.result_count == 0) {
      // Nothing was salvaged — an empty "success" would be
      // indistinguishable from a real empty result, so fail typed.
      return TripStatus(guard);
    }
    result.metrics.degraded = true;
    if (!result.metrics.degraded_reason.empty()) {
      result.metrics.degraded_reason += "; ";
    }
    result.metrics.degraded_reason +=
        "retrieval stopped early (" + guard.TripReason() +
        "); top-k ranks the " + std::to_string(result.result_count) +
        " documents matched before the stop";
  }
  if (result.metrics.degraded) degradation_.degraded_queries++;

  result.metrics.retrieval_ms = retrieval_timer.ElapsedMillis();
  result.metrics.total_ms = total_timer.ElapsedMillis();
  result.metrics.plan += "; retrieval: " +
                         std::to_string(qstats.keywords.size() +
                                        query.context.size()) +
                         "-way conjunction, most selective first, top-" +
                         std::to_string(config_.top_k);
  if (retrieval_aborted) result.metrics.plan += " (partial)";
  return result;
}

}  // namespace csr
