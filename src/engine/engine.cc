#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "engine/merger.h"
#include "engine/top_k.h"
#include "index/intersection.h"
#include "index/simd_intersect.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace csr {

ContextSearchEngine::~ContextSearchEngine() {
  // The adaptive thread's materialize hook reads live state (and the
  // merger publishes it), so stop adaptive first, then the merger.
  StopAdaptiveSelection();
  StopBackgroundMerge();
}

std::string_view EvaluationModeName(EvaluationMode mode) {
  switch (mode) {
    case EvaluationMode::kConventional:
      return "conventional";
    case EvaluationMode::kContextStraightforward:
      return "context-straightforward";
    case EvaluationMode::kContextWithViews:
      return "context-with-views";
  }
  return "unknown";
}

Result<std::unique_ptr<ContextSearchEngine>> ContextSearchEngine::Build(
    Corpus corpus, EngineConfig config) {
  if (corpus.docs.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  auto engine = std::unique_ptr<ContextSearchEngine>(new ContextSearchEngine());
  engine->corpus_ = std::move(corpus);
  engine->config_ = config;
  engine->ranking_ = MakeRankingFunction(config.ranking);
  if (engine->ranking_ == nullptr) {
    return Status::InvalidArgument("unknown ranking function: " +
                                   config.ranking);
  }
  if (engine->ranking_->NeedsTermCounts() && !config.track_tc) {
    return Status::InvalidArgument(
        "ranking function '" + config.ranking +
        "' needs tc statistics; set EngineConfig::track_tc");
  }

  // Content and predicate indexes.
  IndexBuilder content_builder(config.segment_size);
  IndexBuilder predicate_builder(config.segment_size);
  for (const Document& d : engine->corpus_.docs) {
    CSR_RETURN_NOT_OK(content_builder.AddDocument(d.id, d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(d.id, d.annotations));
  }
  engine->content_index_ = content_builder.Build();
  engine->predicate_index_ = predicate_builder.Build();
  return Finish(std::move(engine));
}

Result<std::unique_ptr<ContextSearchEngine>>
ContextSearchEngine::BuildWithIndexes(Corpus corpus, EngineConfig config,
                                      InvertedIndex content_index,
                                      InvertedIndex predicate_index) {
  if (corpus.docs.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  if (content_index.num_docs() != predicate_index.num_docs() ||
      content_index.num_docs() == 0 ||
      content_index.num_docs() > corpus.docs.size()) {
    return Status::InvalidArgument(
        "indexes cover " + std::to_string(content_index.num_docs()) + "/" +
        std::to_string(predicate_index.num_docs()) +
        " documents but the corpus has " + std::to_string(corpus.docs.size()) +
        " (the base must be a non-empty prefix)");
  }
  auto engine = std::unique_ptr<ContextSearchEngine>(new ContextSearchEngine());
  engine->corpus_ = std::move(corpus);
  engine->config_ = config;
  engine->ranking_ = MakeRankingFunction(config.ranking);
  if (engine->ranking_ == nullptr) {
    return Status::InvalidArgument("unknown ranking function: " +
                                   config.ranking);
  }
  if (engine->ranking_->NeedsTermCounts() && !config.track_tc) {
    return Status::InvalidArgument(
        "ranking function '" + config.ranking +
        "' needs tc statistics; set EngineConfig::track_tc");
  }
  engine->content_index_ = std::move(content_index);
  engine->predicate_index_ = std::move(predicate_index);
  return Finish(std::move(engine));
}

Result<std::unique_ptr<ContextSearchEngine>> ContextSearchEngine::Finish(
    std::unique_ptr<ContextSearchEngine> engine) {
  const EngineConfig& config = engine->config_;
  if (config.compressed_postings) engine->CompactIndexes();

  // The indexes define the BASE segment; it may be a prefix of the corpus
  // (segmented snapshot load — the tail is installed as extra segments
  // afterwards). years_ is base-local: extras carry their own year arrays
  // so appends never reallocate a vector under a concurrent query.
  engine->base_docs_ = engine->content_index_.num_docs();
  engine->years_.reserve(engine->base_docs_);
  for (uint64_t i = 0; i < engine->base_docs_; ++i) {
    engine->years_.push_back(engine->corpus_.docs[i].year);
  }
  auto live = std::make_shared<LiveSet>();
  live->base_docs = engine->base_docs_;
  live->total_docs = engine->base_docs_;
  live->epoch = 1;
  {
    std::lock_guard<std::mutex> lock(engine->live_mu_);
    engine->live_ = std::move(live);
  }

  engine->context_threshold_ = static_cast<uint64_t>(
      config.context_threshold_fraction *
      static_cast<double>(engine->corpus_.docs.size()));
  if (engine->context_threshold_ == 0) engine->context_threshold_ = 1;

  engine->tracked_ = TrackedKeywords::Select(
      engine->content_index_, engine->context_threshold_, config.tracked_cap);
  engine->param_table_ = std::make_unique<DocParamTable>(
      DocParamTable::Build(engine->content_index_, engine->tracked_));
  engine->estimator_ = std::make_unique<ViewSizeEstimator>(
      &engine->corpus_, /*seed=*/engine->corpus_.config.seed ^ 0x5EED,
      config.estimator_sample);
  engine->atm_ = std::make_unique<AtmMapper>(&engine->corpus_,
                                             &engine->content_index_,
                                             &engine->predicate_index_);
  if (config.stats_cache_capacity > 0) {
    engine->stats_cache_ =
        std::make_unique<StatsCache>(config.stats_cache_capacity);
  }
  engine->metrics_enabled_.store(config.metrics_enabled,
                                 std::memory_order_relaxed);
  engine->view_breaker_.Configure(config.view_breaker);
  engine->set_trace_sample_rate(config.trace_sample_rate);
  engine->InitAdaptive();
  engine->RegisterMetrics();
  if (config.background_merge) engine->StartBackgroundMerge();
  if (config.adaptive_background) engine->StartAdaptiveSelection();
  return engine;
}

void ContextSearchEngine::InitAdaptive() {
  if (config_.adaptive_view_budget_bytes == 0) return;
  AdaptiveSelectionConfig acfg;
  acfg.budget_bytes = config_.adaptive_view_budget_bytes;
  acfg.half_life = config_.adaptive_half_life;
  acfg.min_score = config_.adaptive_min_score_ms;
  acfg.max_context_terms = config_.adaptive_max_context_terms;
  acfg.cooldown_steps = config_.adaptive_cooldown_steps;
  acfg.interval_ms = config_.adaptive_interval_ms;
  AdaptiveViewController::Hooks hooks;
  hooks.materialize = [this](const ViewDefinition& def,
                             std::shared_ptr<const AdaptiveView> prior) {
    return BuildAdaptiveView(def, std::move(prior));
  };
  hooks.estimate_bytes = [this](const ViewDefinition& def) {
    ViewParamOptions options{/*track_df=*/true, config_.track_tc,
                             config_.view_year_bucket};
    return estimator_->EstimateBytes(
        def, options, static_cast<uint32_t>(tracked_.size()));
  };
  hooks.live_epoch = [this] { return SnapshotLive()->epoch; };
  adaptive_ = std::make_unique<AdaptiveViewController>(acfg, std::move(hooks));
}

bool ContextSearchEngine::AdaptiveStep() const {
  return adaptive_ != nullptr && adaptive_->Step();
}

void ContextSearchEngine::StartAdaptiveSelection() {
  if (adaptive_ != nullptr) adaptive_->Start();
}

void ContextSearchEngine::StopAdaptiveSelection() {
  if (adaptive_ != nullptr) adaptive_->Stop();
}

void ContextSearchEngine::set_trace_sample_rate(double rate) {
  uint32_t period = 0;
  if (rate >= 1.0) {
    period = 1;
  } else if (rate > 0.0) {
    period = static_cast<uint32_t>(std::lround(1.0 / rate));
    if (period == 0) period = 1;
  }
  trace_period_.store(period, std::memory_order_relaxed);
}

bool ContextSearchEngine::ShouldTrace() const {
  uint32_t period = trace_period_.load(std::memory_order_relaxed);
  if (period == 0) return false;
  uint64_t seq = trace_sequence_.fetch_add(1, std::memory_order_relaxed);
  return seq % period == 0;
}

void ContextSearchEngine::RegisterMetrics() {
  // Hot-path instruments: resolved once here, updated through the cached
  // pointers with relaxed atomics (no lock, no name lookup per query).
  hot_.queries = &registry_.GetCounter("engine.queries");
  hot_.queries_failed = &registry_.GetCounter("engine.queries_failed");
  hot_.queries_degraded = &registry_.GetCounter("engine.queries_degraded");
  hot_.traces_sampled = &registry_.GetCounter("engine.traces_sampled");
  hot_.plan_view_hits = &registry_.GetCounter("engine.plan.view_hits");
  hot_.plan_straightforward =
      &registry_.GetCounter("engine.plan.straightforward");
  hot_.plan_conventional = &registry_.GetCounter("engine.plan.conventional");
  hot_.plan_cache_hits =
      &registry_.GetCounter("engine.plan.stats_cache_hits");
  hot_.plan_view_fallbacks =
      &registry_.GetCounter("engine.plan.view_fallbacks");
  hot_.plan_adaptive_hits =
      &registry_.GetCounter("engine.plan.adaptive_view_hits");
  hot_.cost_entries_scanned =
      &registry_.GetCounter("engine.cost.entries_scanned");
  hot_.cost_segments_touched =
      &registry_.GetCounter("engine.cost.segments_touched");
  hot_.cost_skips_taken = &registry_.GetCounter("engine.cost.skips_taken");
  hot_.cost_aggregation_entries =
      &registry_.GetCounter("engine.cost.aggregation_entries");
  hot_.cost_view_tuples_scanned =
      &registry_.GetCounter("engine.cost.view_tuples_scanned");
  hot_.cost_blocks_skipped =
      &registry_.GetCounter("engine.cost.blocks_skipped");
  hot_.cost_bytes_touched =
      &registry_.GetCounter("engine.cost.bytes_touched");
  hot_.total_ms = &registry_.GetHistogram("engine.latency.total_ms");
  hot_.stats_ms = &registry_.GetHistogram("engine.latency.stats_ms");
  hot_.retrieval_ms = &registry_.GetHistogram("engine.latency.retrieval_ms");
  hot_.ingest_docs = &registry_.GetCounter("ingest.appended_docs");
  hot_.ingest_batches = &registry_.GetCounter("ingest.batches");
  hot_.ingest_seals = &registry_.GetCounter("ingest.seals");
  hot_.segment_merges = &registry_.GetCounter("segments.merges");
  hot_.segment_merged_docs = &registry_.GetCounter("segments.merged_docs");
  hot_.view_delta_folds = &registry_.GetCounter("view.delta.folds");
  hot_.view_delta_merges = &registry_.GetCounter("view.delta.merges");

  // Legacy counters register INTO the registry via sample callbacks: each
  // struct stays authoritative (existing accessors and tests unchanged) and
  // is read under its own synchronization discipline only at Snapshot time.
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    const DegradationStats& d = degradation_;  // relaxed atomics
    snap.counters["engine.degradation.views_quarantined"] =
        d.views_quarantined;
    snap.counters["engine.degradation.quarantine_fallbacks"] =
        d.quarantine_fallbacks;
    snap.counters["engine.degradation.deadline_hits"] = d.deadline_hits;
    snap.counters["engine.degradation.budget_hits"] = d.budget_hits;
    snap.counters["engine.degradation.fault_trips"] = d.fault_trips;
    snap.counters["engine.degradation.degraded_queries"] = d.degraded_queries;
    snap.counters["engine.degradation.view_read_faults"] =
        d.view_read_faults;
    snap.counters["engine.degradation.segments_quarantined"] =
        d.segments_quarantined;
  });
  registry_.AddSampleCallback([](csr::MetricsSnapshot& snap) {
    // Intersection-kernel selector decisions (DESIGN.md §15). The tallies
    // are process-wide relaxed atomics in simd_intersect.cc — shared
    // across engines, monotone, read without locks.
    const IntersectTallies t = SnapshotIntersectTallies();
    snap.counters["intersect.kernel.pairwise"] = t.pairwise;
    snap.counters["intersect.kernel.wide_probe"] = t.wide_probe;
    snap.counters["intersect.kernel.gallop"] = t.gallop;
    snap.counters["intersect.leapfrog.merge"] = t.leapfrog_merge;
    snap.counters["intersect.leapfrog.gallop"] = t.leapfrog_gallop;
    for (size_t i = 0; i < kIntersectRatioBuckets; ++i) {
      if (t.ratio_hist[i] == 0) continue;  // keep .metrics output dense
      std::string name = "intersect.ratio." + std::to_string(1ull << i);
      if (i + 1 < kIntersectRatioBuckets) {
        name += "_" + std::to_string(1ull << (i + 1));
      } else {
        name += "_plus";
      }
      snap.counters[name] = t.ratio_hist[i];
    }
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    // Segment shape and view-delta staleness bound (DESIGN.md §14). One
    // snapshot copy under the leaf live mutex; everything read from it is
    // immutable.
    std::shared_ptr<const LiveSet> live = SnapshotLive();
    uint64_t sealed = 0;
    uint64_t buffer_docs = 0;
    uint64_t delta_tuples = 0;
    for (const auto& es : live->extras) {
      if (es->index.sealed) {
        ++sealed;
      } else {
        buffer_docs += es->index.num_docs;
      }
      for (const MaterializedView& v : es->view_deltas) {
        delta_tuples += v.NumTuples();
      }
    }
    snap.gauges["segments.live"] =
        static_cast<double>(1 + live->extras.size());
    snap.gauges["segments.sealed"] = static_cast<double>(sealed);
    snap.gauges["segments.buffer_docs"] = static_cast<double>(buffer_docs);
    snap.gauges["ingest.total_docs"] = static_cast<double>(live->total_docs);
    snap.gauges["ingest.base_docs"] = static_cast<double>(live->base_docs);
    // The per-view staleness bound: how many documents' worth of aggregates
    // live in query-time-folded deltas rather than the base catalog. Views
    // are always exact — this bounds merge lag, not error.
    snap.gauges["view.delta.staleness_docs"] =
        static_cast<double>(live->total_docs - live->base_docs);
    snap.gauges["view.delta.tuples"] = static_cast<double>(delta_tuples);
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    // Overload-resilience telemetry (DESIGN.md §13). The budget is
    // process-wide (one bucket shared by every retried site); the breaker
    // is this engine's view-path breaker. Both are internally
    // synchronized leaf components, safe to read under the registry mutex.
    const RetryBudget& budget = RetryBudget::Global();
    snap.counters["retry.withdrawals"] = budget.withdrawals();
    snap.counters["retry.denials"] = budget.denials();
    snap.counters["retry.deposits"] = budget.deposits();
    snap.gauges["retry.tokens"] = budget.tokens();
    snap.gauges["retry.capacity"] = budget.capacity();
    snap.counters["breaker.trips"] = view_breaker_.trips();
    snap.counters["breaker.recoveries"] = view_breaker_.recoveries();
    snap.counters["breaker.short_circuits"] = view_breaker_.short_circuits();
    snap.counters["breaker.probes"] = view_breaker_.probes();
    snap.gauges["breaker.state"] =
        static_cast<double>(static_cast<uint32_t>(view_breaker_.state()));
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    if (stats_cache_ == nullptr) return;
    // Each accessor sums the shards under their own mutexes; monotonic but
    // not one atomic cross-shard snapshot (the StatsCache contract).
    snap.counters["engine.stats_cache.hits"] = stats_cache_->hits();
    snap.counters["engine.stats_cache.misses"] = stats_cache_->misses();
    snap.counters["engine.stats_cache.evictions"] =
        stats_cache_->evictions();
    snap.gauges["engine.stats_cache.entries"] =
        static_cast<double>(stats_cache_->size());
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    // Catalog shape. Search holds no lock on the catalog (it is immutable
    // during serving; mutators require exclusive access), so neither does
    // this sample.
    snap.gauges["engine.views.materialized"] =
        static_cast<double>(catalog_.size());
    snap.gauges["engine.views.quarantined"] =
        static_cast<double>(catalog_.quarantined().size());
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    // Adaptive view cache (DESIGN.md §17): monotone telemetry counters
    // plus a point-in-time read of the published version. Both are leaf-
    // synchronized (relaxed atomics / one shared_ptr copy).
    if (adaptive_ == nullptr) return;
    const AdaptiveCacheTelemetry& t = adaptive_->telemetry();
    uint64_t hits = t.hits;
    uint64_t misses = t.misses;
    snap.counters["view.cache.hits"] = hits;
    snap.counters["view.cache.misses"] = misses;
    snap.counters["view.cache.installs"] = t.installs;
    snap.counters["view.cache.evictions"] = t.evictions;
    snap.counters["view.cache.refreshes"] = t.refreshes;
    snap.counters["view.cache.rejected_budget"] = t.rejected_budget;
    snap.counters["view.cache.build_failures"] = t.build_failures;
    snap.counters["view.cache.stale_part_fallbacks"] = t.stale_part_fallbacks;
    double build_ms = static_cast<double>(t.build_micros) / 1000.0;
    snap.gauges["view.cache.build_ms_total"] = build_ms;
    snap.gauges["view.cache.hit_rate"] =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    // Build-cost amortization: milliseconds of materialization paid per
    // view hit so far (drops toward zero as residents keep paying off).
    snap.gauges["view.cache.build_ms_per_hit"] =
        hits == 0 ? build_ms : build_ms / static_cast<double>(hits);
    auto version = adaptive_->Snapshot();
    snap.gauges["view.cache.resident_views"] =
        static_cast<double>(version->views.size());
    snap.gauges["view.cache.resident_bytes"] =
        static_cast<double>(version->resident_bytes);
    snap.gauges["view.cache.budget_bytes"] =
        static_cast<double>(adaptive_->config().budget_bytes);
    snap.gauges["view.cache.version"] =
        static_cast<double>(version->version);
    snap.gauges["view.cache.candidates"] =
        static_cast<double>(adaptive_->CandidateCount());
  });
}

void ContextSearchEngine::RecordQueryMetrics(const SearchMetrics& m,
                                             EvaluationMode mode,
                                             bool failed) const {
  hot_.queries->Increment();
  if (failed) {
    hot_.queries_failed->Increment();
    return;
  }
  if (m.degraded) hot_.queries_degraded->Increment();
  // Plan-choice accounting: exactly one plan counter per successful query,
  // classifying how the statistics phase was answered.
  if (mode == EvaluationMode::kConventional) {
    hot_.plan_conventional->Increment();
  } else if (m.stats_cache_hit) {
    hot_.plan_cache_hits->Increment();
  } else if (m.used_view) {
    hot_.plan_view_hits->Increment();
    if (m.used_adaptive_view) hot_.plan_adaptive_hits->Increment();
  } else if (m.fell_back_to_straightforward) {
    hot_.plan_view_fallbacks->Increment();
  } else {
    hot_.plan_straightforward->Increment();
  }
  hot_.cost_entries_scanned->Increment(m.cost.entries_scanned);
  hot_.cost_segments_touched->Increment(m.cost.segments_touched);
  hot_.cost_skips_taken->Increment(m.cost.skips_taken);
  hot_.cost_aggregation_entries->Increment(m.cost.aggregation_entries);
  hot_.cost_view_tuples_scanned->Increment(m.cost.view_tuples_scanned);
  hot_.cost_blocks_skipped->Increment(m.cost.blocks_skipped);
  hot_.cost_bytes_touched->Increment(m.cost.bytes_touched);
  hot_.total_ms->Observe(m.total_ms);
  hot_.stats_ms->Observe(m.stats_ms);
  hot_.retrieval_ms->Observe(m.retrieval_ms);
}

namespace {

// Exclusive mutators invalidate the shapes adaptive residents were built
// against (base indexes, tracked table, estimator), so they stop the
// controller, drop its resident set, and restart the background thread on
// exit. Nested mutators (SelectAndMaterializeViews -> FlattenSegments) are
// safe: the inner guard observes the thread already stopped and leaves the
// restart to the outer one.
class AdaptiveExclusiveGuard {
 public:
  explicit AdaptiveExclusiveGuard(AdaptiveViewController* c) : c_(c) {
    if (c_ == nullptr) return;
    was_running_ = c_->running();
    c_->Stop();
    c_->Reset();
  }
  ~AdaptiveExclusiveGuard() {
    if (c_ != nullptr && was_running_) c_->Start();
  }
  AdaptiveExclusiveGuard(const AdaptiveExclusiveGuard&) = delete;
  AdaptiveExclusiveGuard& operator=(const AdaptiveExclusiveGuard&) = delete;

 private:
  AdaptiveViewController* c_;
  bool was_running_ = false;
};

}  // namespace

void ContextSearchEngine::CompactIndexes() {
  AdaptiveExclusiveGuard adaptive_guard(adaptive_.get());
  content_index_.Compact(/*block_size=*/0, config_.codec_policy);
  predicate_index_.Compact(/*block_size=*/0, config_.codec_policy);
  catalog_.CompactAll();
  // Sealed extras are compacted at seal time and the write buffer stays
  // uncompressed by design, so only the base needs work here.
}

// -- Live-set plumbing (DESIGN.md §14) -----------------------------------

std::shared_ptr<const LiveSet> ContextSearchEngine::SnapshotLive() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  return live_;
}

void ContextSearchEngine::PublishLive(std::shared_ptr<LiveSet> next) {
  next->epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(live_mu_);
  live_ = std::move(next);
}

std::vector<SearchPart> ContextSearchEngine::MakeParts(
    const LiveSet& live) const {
  std::vector<SearchPart> parts;
  parts.reserve(1 + live.extras.size());
  SearchPart base;
  base.content = &content_index_;
  base.predicate = &predicate_index_;
  base.years = std::span<const uint16_t>(years_);
  base.base = 0;
  base.segment_id = 0;
  parts.push_back(base);
  for (const auto& es : live.extras) {
    SearchPart p;
    p.content = &es->index.content;
    p.predicate = &es->index.predicate;
    p.years = std::span<const uint16_t>(es->index.years);
    p.base = es->index.base;
    p.segment_id = es->index.id;
    p.view_deltas = &es->view_deltas;
    parts.push_back(p);
  }
  return parts;
}

uint64_t ContextSearchEngine::total_docs() const {
  return SnapshotLive()->total_docs;
}

uint16_t ContextSearchEngine::doc_year(DocId d) const {
  if (d < years_.size()) return years_[d];
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  for (const auto& es : live->extras) {
    if (d >= es->index.base && d < es->index.base + es->index.num_docs) {
      return es->index.years[d - es->index.base];
    }
  }
  return 0;
}

std::vector<SegmentInfo> ContextSearchEngine::SegmentInfos() const {
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  std::vector<SegmentInfo> infos;
  infos.reserve(1 + live->extras.size());
  SegmentInfo base;
  base.id = 0;
  base.base = 0;
  base.num_docs = static_cast<uint32_t>(base_docs_);
  base.sealed = true;
  base.codec_blocks = content_index_.CodecBlockCounts();
  base.view_delta_tuples = catalog_.TotalTuples();
  base.memory_bytes =
      content_index_.MemoryBytes() + predicate_index_.MemoryBytes();
  infos.push_back(base);
  for (const auto& es : live->extras) {
    SegmentInfo info;
    info.id = es->index.id;
    info.base = es->index.base;
    info.num_docs = es->index.num_docs;
    info.sealed = es->index.sealed;
    info.codec_blocks = es->index.content.CodecBlockCounts();
    for (const MaterializedView& v : es->view_deltas) {
      info.view_delta_tuples += v.NumTuples();
    }
    info.memory_bytes = es->index.MemoryBytes();
    infos.push_back(info);
  }
  return infos;
}

std::vector<MaterializedView> ContextSearchEngine::BuildViewDeltasLocked(
    const InvertedIndex& content, DocId first, DocId end) const {
  std::vector<MaterializedView> deltas;
  if (catalog_.size() == 0) return deltas;
  std::vector<ViewDefinition> defs;
  defs.reserve(catalog_.size());
  for (size_t i = 0; i < catalog_.size(); ++i) {
    defs.push_back(catalog_.view(i).def());
  }
  ViewParamOptions params;
  params.track_df = true;
  params.track_tc = config_.track_tc;
  params.year_bucket_size = config_.view_year_bucket;
  // The segment's param table is local (row 0 = global doc `first`), so
  // the builder maps corpus docids down by table_base.
  DocParamTable local_table = DocParamTable::Build(content, tracked_);
  ViewBuilder builder(&corpus_, &local_table, params,
                      static_cast<uint32_t>(tracked_.size()),
                      /*table_base=*/first);
  deltas = builder.BuildRange(defs, first, end);
  return deltas;
}

std::shared_ptr<const AdaptiveView> ContextSearchEngine::BuildAdaptiveView(
    const ViewDefinition& def,
    std::shared_ptr<const AdaptiveView> prior) const {
  // Pin ONE LiveSet snapshot for the whole build: the shared_ptrs keep
  // every segment alive even if a concurrent merge retires it, so the
  // build always completes against a consistent collection state. Built
  // over indexes only — never corpus_.docs, which concurrent appends grow
  // (vector reallocation under a reader). If parts of the snapshot are
  // merged away before install, queries detect the id mismatch per part
  // and fall back; the controller's refresh path tops the view up.
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  if (adaptive_build_intercept_) adaptive_build_intercept_();
  if (def.num_columns() == 0 || def.num_columns() > 64) return nullptr;

  ViewParamOptions options;
  options.track_df = true;
  options.track_tc = config_.track_tc;
  options.year_bucket_size = config_.view_year_bucket;
  auto av = std::make_shared<AdaptiveView>();
  av->def = def;
  av->built_epoch = live->epoch;
  av->base_docs = live->base_docs;

  // Base members (content_index_, predicate_index_, years_, tracked_) are
  // only mutated by exclusive mutators, which stop this thread first —
  // see AdaptiveExclusiveGuard. A top-up refresh reuses the prior base
  // outright when the base extent is unchanged.
  if (prior != nullptr && prior->base != nullptr &&
      prior->base_docs == live->base_docs) {
    av->base = prior->base;
  } else {
    MaterializedView base = BuildViewFromIndexes(
        def, options, tracked_, content_index_, predicate_index_, years_);
    base.Compact();
    av->base = std::make_shared<const MaterializedView>(std::move(base));
  }
  av->bytes = av->base->MemoryBytes();

  for (const auto& es : live->extras) {
    AdaptiveDelta delta;
    delta.segment_id = es->index.id;
    delta.base = es->index.base;
    delta.num_docs = es->index.num_docs;
    // Reuse the prior's delta for a still-live segment (ids are never
    // reused with different content, so an id + extent match is exact).
    if (prior != nullptr) {
      for (const AdaptiveDelta& pd : prior->deltas) {
        if (pd.segment_id == delta.segment_id && pd.base == delta.base &&
            pd.num_docs == delta.num_docs) {
          delta.view = pd.view;
          break;
        }
      }
    }
    if (delta.view == nullptr) {
      MaterializedView dv = BuildViewFromIndexes(
          def, options, tracked_, es->index.content, es->index.predicate,
          es->index.years);
      dv.Compact();
      delta.view = std::make_shared<const MaterializedView>(std::move(dv));
    }
    av->bytes += delta.view->MemoryBytes();
    av->deltas.push_back(std::move(delta));
  }
  return av;
}

Result<std::shared_ptr<EngineSegment>> ContextSearchEngine::BuildSegmentLocked(
    DocId first, DocId end, bool seal) {
  auto segment = std::make_shared<EngineSegment>();
  IndexBuilder content_builder(config_.segment_size);
  IndexBuilder predicate_builder(config_.segment_size);
  segment->index.years.reserve(end - first);
  for (DocId i = first; i < end; ++i) {
    const Document& d = corpus_.docs[i];
    CSR_RETURN_NOT_OK(
        content_builder.AddDocument(i - first, d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(i - first, d.annotations));
    segment->index.years.push_back(d.year);
  }
  segment->index.content = content_builder.Build();
  segment->index.predicate = predicate_builder.Build();
  segment->index.id = next_segment_id_++;
  segment->index.base = first;
  segment->index.num_docs = end - first;
  segment->index.sealed = seal;
  // Deltas are built from the uncompressed index (DocParamTable walks
  // posting lists), then everything compacts when the segment seals.
  segment->view_deltas =
      BuildViewDeltasLocked(segment->index.content, first, end);
  if (seal && config_.compressed_postings) {
    segment->index.content.Compact(/*block_size=*/0, config_.codec_policy);
    segment->index.predicate.Compact(/*block_size=*/0, config_.codec_policy);
    for (MaterializedView& v : segment->view_deltas) v.Compact();
  }
  return segment;
}

Status ContextSearchEngine::ResegmentTailLocked(DocId tail_first) {
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  auto next = std::make_shared<LiveSet>();
  next->base_docs = live->base_docs;
  for (const auto& es : live->extras) {
    if (es->index.base + es->index.num_docs <= tail_first) {
      next->extras.push_back(es);
    } else if (es->index.base < tail_first) {
      return Status::Internal("segment straddles the resegmented tail");
    }
  }
  const DocId end = static_cast<DocId>(corpus_.docs.size());
  const uint32_t seal_at =
      config_.mem_segment_max_docs == 0 ? UINT32_MAX
                                        : config_.mem_segment_max_docs;
  DocId pos = tail_first;
  while (end - pos >= seal_at) {
    CSR_ASSIGN_OR_RETURN(std::shared_ptr<EngineSegment> seg,
                         BuildSegmentLocked(pos, pos + seal_at,
                                            /*seal=*/true));
    next->extras.push_back(std::move(seg));
    pos += seal_at;
    hot_.ingest_seals->Increment();
  }
  if (pos < end) {
    CSR_ASSIGN_OR_RETURN(std::shared_ptr<EngineSegment> seg,
                         BuildSegmentLocked(pos, end, /*seal=*/false));
    next->extras.push_back(std::move(seg));
  }
  next->total_docs = end;
  PublishLive(std::move(next));
  if (stats_cache_ != nullptr) stats_cache_->Clear();
  return Status::OK();
}

uint64_t ContextSearchEngine::ContextSize(
    std::span<const TermId> context) const {
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  std::vector<SearchPart> parts = MakeParts(*live);
  uint64_t total = 0;
  for (const SearchPart& part : parts) {
    std::vector<PostingCursor> cursors;
    cursors.reserve(context.size());
    bool missing = false;
    for (TermId m : context) {
      PostingCursor c = part.predicate->cursor(m);
      if (!c.valid()) {
        missing = true;
        break;
      }
      cursors.push_back(std::move(c));
    }
    if (!missing) total += CountIntersection(std::move(cursors));
  }
  return total;
}

bool ContextSearchEngine::MergeOnce() {
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  std::shared_ptr<const LiveSet> live = SnapshotLive();

  // Size-tiered policy over ADJACENT sealed pairs (adjacency preserves the
  // contiguous global docid space): arm when enough sealed extras are
  // live, then fold the pair with the smallest combined size.
  uint64_t sealed = 0;
  for (const auto& es : live->extras) {
    if (es->index.sealed) ++sealed;
  }
  if (config_.merge_trigger_segments == 0 ||
      sealed < config_.merge_trigger_segments) {
    return false;
  }
  int64_t best = -1;
  uint64_t best_docs = UINT64_MAX;
  for (size_t i = 0; i + 1 < live->extras.size(); ++i) {
    const IndexSegment& a = live->extras[i]->index;
    const IndexSegment& b = live->extras[i + 1]->index;
    if (!a.sealed || !b.sealed) continue;
    uint64_t docs = static_cast<uint64_t>(a.num_docs) + b.num_docs;
    if (docs < best_docs) {
      best_docs = docs;
      best = static_cast<int64_t>(i);
    }
  }
  if (best < 0) return false;

  // The heavy work happens on immutable shared_ptr inputs; queries keep
  // serving from the old LiveSet until the swap below.
  const EngineSegment& a = *live->extras[static_cast<size_t>(best)];
  const EngineSegment& b = *live->extras[static_cast<size_t>(best) + 1];
  Result<IndexSegment> merged_index = MergeSegments(
      a.index, b.index, next_segment_id_++, config_.segment_size);
  if (!merged_index.ok()) return false;

  auto merged = std::make_shared<EngineSegment>();
  merged->index = std::move(merged_index).value();
  merged->index.sealed = true;
  merged->view_deltas.reserve(a.view_deltas.size());
  for (size_t v = 0; v < a.view_deltas.size(); ++v) {
    MaterializedView mv = a.view_deltas[v].Clone();
    mv.MergeFrom(b.view_deltas[v]);
    merged->view_deltas.push_back(std::move(mv));
  }
  if (config_.compressed_postings) {
    merged->index.content.Compact(/*block_size=*/0, config_.codec_policy);
    merged->index.predicate.Compact(/*block_size=*/0, config_.codec_policy);
    for (MaterializedView& v : merged->view_deltas) v.Compact();
  }

  auto next = std::make_shared<LiveSet>();
  next->base_docs = live->base_docs;
  next->total_docs = live->total_docs;
  for (size_t i = 0; i < live->extras.size(); ++i) {
    if (static_cast<int64_t>(i) == best) {
      next->extras.push_back(merged);
      ++i;  // skip the second input
    } else {
      next->extras.push_back(live->extras[i]);
    }
  }
  PublishLive(std::move(next));
  hot_.segment_merges->Increment();
  hot_.segment_merged_docs->Increment(best_docs);
  hot_.view_delta_merges->Increment(a.view_deltas.size());
  return true;
}

Status ContextSearchEngine::FlattenSegments() {
  AdaptiveExclusiveGuard adaptive_guard(adaptive_.get());
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  if (live->extras.empty()) return Status::OK();

  // Fold every extra's postings into the base, docid-ascending; one
  // compaction at the end reproduces the scratch-built block bytes.
  InvertedIndex content = std::move(content_index_);
  InvertedIndex predicate = std::move(predicate_index_);
  for (const auto& es : live->extras) {
    content = MergeIndexes(content, es->index.content, config_.segment_size);
    predicate =
        MergeIndexes(predicate, es->index.predicate, config_.segment_size);
    years_.insert(years_.end(), es->index.years.begin(),
                  es->index.years.end());
  }
  if (config_.compressed_postings) {
    content.Compact(/*block_size=*/0, config_.codec_policy);
    predicate.Compact(/*block_size=*/0, config_.codec_policy);
  }
  content_index_ = std::move(content);
  predicate_index_ = std::move(predicate);

  // Physically merge the view deltas into the base catalog (integer sums
  // — bit-identical to a scratch BuildAll over the union).
  if (catalog_.size() > 0) {
    std::vector<MaterializedView> views = catalog_.Release();
    for (const auto& es : live->extras) {
      for (size_t v = 0; v < views.size(); ++v) {
        views[v].MergeFrom(es->view_deltas[v]);
      }
      hot_.view_delta_merges->Increment(views.size());
    }
    for (MaterializedView& v : views) catalog_.Add(std::move(v));
    if (config_.compressed_postings) catalog_.CompactAll();
  }

  // The derived artifacts cover the whole collection again.
  base_docs_ = content_index_.num_docs();
  param_table_ = std::make_unique<DocParamTable>(
      DocParamTable::Build(content_index_, tracked_));
  estimator_ = std::make_unique<ViewSizeEstimator>(
      &corpus_, corpus_.config.seed ^ 0x5EED, config_.estimator_sample);
  atm_ = std::make_unique<AtmMapper>(&corpus_, &content_index_,
                                     &predicate_index_);
  if (stats_cache_ != nullptr) stats_cache_->Clear();

  auto next = std::make_shared<LiveSet>();
  next->base_docs = base_docs_;
  next->total_docs = base_docs_;
  PublishLive(std::move(next));
  return Status::OK();
}

Status ContextSearchEngine::InstallSealedSegment(IndexSegment segment) {
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  if (segment.base != live->total_docs) {
    return Status::InvalidArgument(
        "segment covers [" + std::to_string(segment.base) + ", ...) but the "
        "live set ends at " + std::to_string(live->total_docs));
  }
  uint64_t end = static_cast<uint64_t>(segment.base) + segment.num_docs;
  if (segment.num_docs == 0 || end > corpus_.docs.size()) {
    return Status::InvalidArgument("segment range exceeds the corpus");
  }
  if (segment.content.num_docs() != segment.num_docs ||
      segment.predicate.num_docs() != segment.num_docs ||
      segment.years.size() != segment.num_docs) {
    return Status::DataLoss("segment internals disagree with its header");
  }
  auto es = std::make_shared<EngineSegment>();
  es->index = std::move(segment);
  es->index.sealed = true;
  // Deltas always align with the CURRENT catalog, so they are rebuilt from
  // the corpus slice rather than persisted.
  DocId first = es->index.base;
  if (es->index.content.compressed()) {
    // DocParamTable walks uncompressed lists; decode once via a scratch
    // rebuild of the content index for the delta pass only.
    IndexBuilder content_builder(config_.segment_size);
    for (DocId i = first; i < first + es->index.num_docs; ++i) {
      CSR_RETURN_NOT_OK(content_builder.AddDocument(
          i - first, corpus_.docs[i].ContentTokens()));
    }
    InvertedIndex plain = content_builder.Build();
    es->view_deltas =
        BuildViewDeltasLocked(plain, first, first + es->index.num_docs);
  } else {
    es->view_deltas = BuildViewDeltasLocked(es->index.content, first,
                                            first + es->index.num_docs);
  }
  if (config_.compressed_postings) {
    for (MaterializedView& v : es->view_deltas) v.Compact();
  }
  next_segment_id_ = std::max(next_segment_id_, es->index.id + 1);

  auto next = std::make_shared<LiveSet>(*live);
  next->extras.push_back(std::move(es));
  next->total_docs = end;
  PublishLive(std::move(next));
  return Status::OK();
}

Status ContextSearchEngine::RebuildSegmentsFromCorpus(DocId first) {
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  std::shared_ptr<const LiveSet> live = SnapshotLive();
  if (first != live->total_docs) {
    return Status::InvalidArgument(
        "rebuild must start at the live end (" +
        std::to_string(live->total_docs) + "), got " + std::to_string(first));
  }
  if (first >= corpus_.docs.size()) return Status::OK();
  return ResegmentTailLocked(first);
}

void ContextSearchEngine::StartBackgroundMerge() {
  if (merger_ != nullptr) return;
  merger_ = std::make_unique<SegmentMerger>(this, config_.merge_interval_ms);
}

void ContextSearchEngine::StopBackgroundMerge() {
  if (merger_ == nullptr) return;
  merger_->Stop();
  merger_.reset();
}

Status ContextSearchEngine::SelectAndMaterializeViews() {
  // Invariant: base views cover exactly the base documents. Fold any live
  // extras into the base before selection sees the collection.
  CSR_RETURN_NOT_OK(FlattenSegments());
  TransactionDb db = TransactionDb::FromCorpus(corpus_);
  Kag kag = Kag::Build(db, context_threshold_, context_threshold_);
  SupportFn support = MakeIndexSupportFn(predicate_index_);

  HybridConfig hconfig;
  hconfig.thresholds.context_threshold = context_threshold_;
  hconfig.thresholds.view_size_threshold = config_.view_size_threshold;
  selection_ = SelectViewsHybrid(db, kag, *estimator_, support, hconfig);

  // Deduplicate identical keyword sets produced by different branches.
  std::unordered_set<uint64_t> seen;
  std::vector<ViewDefinition> defs;
  for (ViewDefinition& v : selection_.views) {
    uint64_t h = HashTermIds(v.keyword_columns);
    if (seen.insert(h).second) defs.push_back(std::move(v));
  }
  selection_.views.clear();
  return MaterializeViews(std::move(defs));
}

Status ContextSearchEngine::MaterializeViews(std::vector<ViewDefinition> defs) {
  AdaptiveExclusiveGuard adaptive_guard(adaptive_.get());
  CSR_RETURN_NOT_OK(FlattenSegments());
  ViewParamOptions params;
  params.track_df = true;
  params.track_tc = config_.track_tc;
  params.year_bucket_size = config_.view_year_bucket;
  ViewBuilder builder(&corpus_, param_table_.get(), params,
                      static_cast<uint32_t>(tracked_.size()));
  std::vector<MaterializedView> views = builder.BuildAll(defs);
  catalog_ = ViewCatalog();
  for (MaterializedView& v : views) catalog_.Add(std::move(v));
  if (config_.compressed_postings) catalog_.CompactAll();
  return Status::OK();
}

Status ContextSearchEngine::AppendDocuments(std::vector<Document> docs) {
  if (docs.empty()) return Status::OK();

  // The append path touches only the TAIL of the collection: the base
  // index, base views, param table, and estimator are untouched, so the
  // cost of an append is proportional to the write buffer, not the corpus.
  // Queries keep serving from their LiveSet snapshot throughout; the new
  // documents become visible atomically at the PublishLive inside
  // ResegmentTailLocked.
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  std::shared_ptr<const LiveSet> live = SnapshotLive();

  DocId next = static_cast<DocId>(corpus_.docs.size());
  uint64_t appended = docs.size();
  for (Document& d : docs) {
    d.id = next++;
    std::sort(d.annotations.begin(), d.annotations.end());
    d.annotations.erase(
        std::unique(d.annotations.begin(), d.annotations.end()),
        d.annotations.end());
    corpus_.docs.push_back(std::move(d));
  }

  // Rebuild from the start of the unsealed buffer (if any) so the buffer
  // absorbs the batch; everything below it is sealed and untouched.
  DocId tail_first = static_cast<DocId>(live->total_docs);
  if (!live->extras.empty() && !live->extras.back()->index.sealed) {
    tail_first = live->extras.back()->index.base;
  }
  CSR_RETURN_NOT_OK(ResegmentTailLocked(tail_first));
  hot_.ingest_docs->Increment(appended);
  hot_.ingest_batches->Increment();
  return Status::OK();
}

Status ContextSearchEngine::InstallCatalog(
    ViewCatalog catalog, const std::vector<TermId>& tracked_terms) {
  AdaptiveExclusiveGuard adaptive_guard(adaptive_.get());
  if (tracked_terms != tracked_.terms()) {
    // The snapshot's tracked set was FROZEN at its original Build; this
    // engine recomputed one over today's collection (which may have grown
    // through appends since that build), so honest drift is expected.
    // Adopt the persisted set — views are slot-aligned to it — as long as
    // it is something this config could have produced; refuse only what
    // no build under this config could have (the changed-config guard).
    if (tracked_terms.size() > config_.tracked_cap) {
      return Status::FailedPrecondition(
          "snapshot tracks " + std::to_string(tracked_terms.size()) +
          " keywords but EngineConfig::tracked_cap is " +
          std::to_string(config_.tracked_cap) +
          "; was the EngineConfig changed since the snapshot was taken?");
    }
    for (size_t i = 0; i < tracked_terms.size(); ++i) {
      bool ordered = i == 0 || tracked_terms[i - 1] < tracked_terms[i];
      if (!ordered || tracked_terms[i] >= content_index_.num_terms()) {
        return Status::FailedPrecondition(
            "snapshot tracked keywords are not a sorted set over this "
            "engine's vocabulary");
      }
    }
    tracked_ = TrackedKeywords::FromTerms(tracked_terms);
    param_table_ = std::make_unique<DocParamTable>(
        DocParamTable::Build(content_index_, tracked_));
  }
  degradation_.views_quarantined += catalog.quarantined().size();
  catalog_ = std::move(catalog);
  if (config_.compressed_postings) catalog_.CompactAll();
  return Status::OK();
}

CollectionStats ContextSearchEngine::FoldGlobalStats(
    std::span<const SearchPart> parts,
    std::span<const TermId> keywords) const {
  CollectionStats total;
  total.df.assign(keywords.size(), 0);
  total.tc.assign(keywords.size(), 0);
  for (const SearchPart& part : parts) {
    CollectionStats ps = GlobalCollectionStats(*part.content, keywords);
    total.cardinality += ps.cardinality;
    total.total_length += ps.total_length;
    for (size_t i = 0; i < ps.df.size(); ++i) total.df[i] += ps.df[i];
    for (size_t i = 0; i < ps.tc.size(); ++i) total.tc[i] += ps.tc[i];
  }
  return total;
}

CollectionStats ContextSearchEngine::ComputeContextStats(
    const ContextQuery& query, const QueryStats& qstats, bool with_views,
    SearchMetrics& metrics, ScanGuard* guard,
    std::span<const SearchPart> parts, TraceContext tctx) const {
  bool need_tc = ranking_->NeedsTermCounts();

  auto straightforward_plan = [&](std::string_view reason) {
    metrics.plan = "stats: straightforward (Figure 3): gamma over ";
    metrics.plan += std::to_string(query.context.size());
    metrics.plan += "-way context intersection + ";
    metrics.plan += std::to_string(qstats.keywords.size());
    metrics.plan += " per-keyword intersections";
    if (parts.size() > 1) {
      metrics.plan += " over " + std::to_string(parts.size()) + " segments";
    }
    if (!reason.empty()) {
      metrics.plan += " [";
      metrics.plan += reason;
      metrics.plan += "]";
    }
  };

  // The statistics of Section 3 are integer sums (counts, length sums)
  // over the matching documents, and the parts partition the docid space,
  // so folding the per-part results reproduces the flattened-index numbers
  // bit for bit. A tripped guard stops the fold — the result is partial
  // either way, and the caller inspects the guard before using it.
  auto straightforward_fold = [&](TraceContext ptx) -> CollectionStats {
    CollectionStats total;
    total.df.assign(qstats.keywords.size(), 0);
    if (need_tc) total.tc.assign(qstats.keywords.size(), 0);
    for (const SearchPart& part : parts) {
      CollectionStats ps;
      if (parts.size() > 1) {
        SpanGuard pspan(ptx, "segment:" + std::to_string(part.segment_id));
        ps = StraightforwardCollectionStats(
            *part.content, *part.predicate, query.context, qstats.keywords,
            need_tc, &metrics.cost, part.years, query.years, guard,
            pspan.ctx());
      } else {
        ps = StraightforwardCollectionStats(
            *part.content, *part.predicate, query.context, qstats.keywords,
            need_tc, &metrics.cost, part.years, query.years, guard, ptx);
      }
      total.cardinality += ps.cardinality;
      total.total_length += ps.total_length;
      for (size_t i = 0; i < ps.df.size(); ++i) total.df[i] += ps.df[i];
      if (need_tc) {
        for (size_t i = 0; i < ps.tc.size(); ++i) total.tc[i] += ps.tc[i];
      }
      if (guard != nullptr && guard->tripped()) break;
    }
    return total;
  };

  if (!with_views) {
    straightforward_plan("");
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", "views disabled for this mode");
    return straightforward_fold(span.ctx());
  }

  int32_t view_idx = catalog_.FindBestIndex(query.context);
  const MaterializedView* view =
      view_idx < 0 ? nullptr : &catalog_.view(static_cast<size_t>(view_idx));
  if (view == nullptr ||
      (query.years.active() && !view->RangeAnswerable(query.years))) {
    // -- Online adaptive view cache (DESIGN.md §17) ----------------------
    // Consulted only when the offline catalog has no usable view: the
    // catalog is the paper's cost-based choice; the cache fills the gaps
    // offline selection could not anticipate. Queries take one immutable
    // version snapshot, so a concurrent install/evict republish is never
    // observed torn. Adaptive views carry the same exact integer
    // aggregates as catalog views — the plans are bit-identical.
    if (adaptive_ != nullptr) {
      std::shared_ptr<const AdaptiveCatalogVersion> aversion =
          adaptive_->Snapshot();
      std::shared_ptr<const AdaptiveView> av =
          aversion->FindBest(query.context);
      if (av != nullptr && av->base != nullptr &&
          (!query.years.active() ||
           av->base->RangeAnswerable(query.years))) {
        metrics.used_view = true;
        metrics.used_adaptive_view = true;
        metrics.plan = "stats: adaptive view scan over V_K (|K|=" +
                       std::to_string(av->def.num_columns()) + ", " +
                       std::to_string(av->NumTuples()) + " tuples, v" +
                       std::to_string(aversion->version) + ")";
        SpanGuard span(tctx, "plan:adaptive_view");
        span.Attr("view_columns",
                  static_cast<uint64_t>(av->def.num_columns()));
        span.Attr("view_tuples", av->NumTuples());
        span.Attr("catalog_version", aversion->version);

        // Fold the view's base + per-segment deltas over the parts.
        // Parts with no matching delta (appended/merged after the build)
        // are answered by the straightforward plan FOR THAT PART, so a
        // stale resident is never wrong, only slower. Deltas are keyed by
        // segment id (never reused with different content); base/docid
        // extents are cross-checked belt-and-braces.
        CollectionStats stats;
        stats.df.assign(qstats.keywords.size(), 0);
        if (need_tc) stats.tc.assign(qstats.keywords.size(), 0);
        std::vector<bool> covered;
        std::vector<const SearchPart*> view_served;
        uint64_t stale_parts = 0;
        for (const SearchPart& part : parts) {
          uint32_t part_docs =
              static_cast<uint32_t>(part.content->num_docs());
          const MaterializedView* pv = nullptr;
          if (part.view_deltas == nullptr) {
            // The base part; matches iff the base extent is unchanged
            // (exclusive mutators that change it reset the controller).
            if (part.base == 0 && part_docs == av->base_docs) {
              pv = av->base.get();
            }
          } else {
            pv = av->DeltaFor(part.segment_id, part.base, part_docs);
          }
          if (pv != nullptr) {
            MaterializedView::StatsResult vr =
                pv->ComputeStats(query.context, qstats.keywords, tracked_,
                                 &metrics.cost, query.years);
            stats.cardinality += vr.cardinality;
            stats.total_length += vr.total_length;
            if (covered.empty()) covered = vr.covered;
            for (size_t i = 0; i < qstats.keywords.size(); ++i) {
              if (!vr.covered[i]) continue;
              stats.df[i] += vr.df[i];
              if (need_tc) stats.tc[i] += vr.tc[i];
            }
            view_served.push_back(&part);
            continue;
          }
          ++stale_parts;
          SpanGuard pspan(span.ctx(),
                          "segment:" + std::to_string(part.segment_id) +
                              ":straightforward");
          CollectionStats ps = StraightforwardCollectionStats(
              *part.content, *part.predicate, query.context,
              qstats.keywords, need_tc, &metrics.cost, part.years,
              query.years, guard, pspan.ctx());
          stats.cardinality += ps.cardinality;
          stats.total_length += ps.total_length;
          for (size_t i = 0; i < ps.df.size(); ++i) stats.df[i] += ps.df[i];
          if (need_tc) {
            for (size_t i = 0; i < ps.tc.size(); ++i) {
              stats.tc[i] += ps.tc[i];
            }
          }
          if (guard != nullptr && guard->tripped()) break;
        }
        metrics.view_tuples_scanned = metrics.cost.view_tuples_scanned;
        if (stale_parts > 0) {
          adaptive_->NoteStalePartFallback(stale_parts);
          metrics.plan += " + " + std::to_string(stale_parts) +
                          " stale segment(s) answered straightforwardly";
        }

        // Keywords without a parameter column are computed at query time —
        // over the VIEW-SERVED parts only (straightforward-served parts
        // already returned full per-keyword statistics above).
        uint32_t uncovered = 0;
        for (size_t i = 0; i < qstats.keywords.size(); ++i) {
          if (covered.empty() || covered[i]) continue;
          ++uncovered;
          uint64_t df = 0;
          uint64_t tc = 0;
          for (const SearchPart* part : view_served) {
            std::vector<PostingCursor> cursors;
            cursors.push_back(
                part->content->cursor(qstats.keywords[i], &metrics.cost));
            if (!cursors.back().valid()) continue;
            bool ok = true;
            for (TermId m : query.context) {
              cursors.push_back(part->predicate->cursor(m, &metrics.cost));
              if (!cursors.back().valid()) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
            ConjunctionIterator it(std::move(cursors), guard);
            for (; !it.AtEnd(); it.Next()) {
              if (!query.years.Contains(part->years[it.doc()])) continue;
              ++df;
              tc += it.tf(0);
            }
            if (guard != nullptr && guard->tripped()) break;
          }
          stats.df[i] += df;
          if (need_tc) stats.tc[i] += tc;
        }
        metrics.keywords_uncovered_by_view = uncovered;
        if (uncovered > 0) {
          metrics.plan +=
              " + " + std::to_string(uncovered) +
              " query-time df intersection(s) for untracked keywords";
        }
        adaptive_->RecordHit(query.context);
        return stats;
      }
    }

    metrics.fell_back_to_straightforward = true;
    std::string reason = view == nullptr
                             ? "fallback: no usable view"
                             : "fallback: year range not bucket-aligned";
    if (view == nullptr) {
      // Attribute the miss when the covering view was dropped at snapshot
      // load: the fallback is then a degradation, not a planning choice.
      const QuarantinedView* q =
          catalog_.FindQuarantinedCovering(query.context);
      if (q != nullptr) {
        metrics.degraded = true;
        metrics.degraded_reason =
            "view for this context was quarantined at load (" + q->reason +
            "); answered by the straightforward plan";
        reason = "fallback: covering view quarantined";
        degradation_.quarantine_fallbacks++;
      }
    }
    straightforward_plan(reason);
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", reason);
    // Fund the adaptive estimator with the cost the miss actually paid.
    // Year-restricted queries are excluded: whether a future view could
    // answer them depends on bucket alignment, so their misses would
    // inflate scores for contexts the cache might never serve.
    if (adaptive_ != nullptr && view == nullptr && !query.years.active()) {
      WallTimer miss_timer;
      CollectionStats s = straightforward_fold(span.ctx());
      if (guard == nullptr || !guard->tripped()) {
        adaptive_->RecordMiss(query.context, miss_timer.ElapsedMillis());
      }
      return s;
    }
    return straightforward_fold(span.ctx());
  }

  // -- Overload resilience on the view path (DESIGN.md §13) -------------
  // The view read is a dependency that can fail transiently (injection
  // point kViewRead). A circuit breaker gates it: while open, queries
  // short-circuit straight to the straightforward plan without touching
  // the view. Because views are exact aggregates, both plans produce
  // bit-identical scores — a short-circuit is a plan choice, not a
  // degradation.
  if (!view_breaker_.Allow()) {
    metrics.fell_back_to_straightforward = true;
    straightforward_plan("fallback: view circuit breaker open");
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", "view circuit breaker open");
    return straightforward_fold(span.ctx());
  }
  // Transient fault on the read itself: retry within the process-wide
  // budget (a storm drains the bucket and fails fast into the fallback
  // instead of multiplying load), then report the outcome to the breaker.
  bool view_ok = !FaultHit(FaultPoint::kViewRead);
  if (!view_ok) {
    degradation_.view_read_faults++;
    DecorrelatedJitterBackoff backoff(config_.view_retry,
                                      /*seed=*/0xB0FF5EEDULL);
    for (uint32_t attempt = 1; attempt < config_.view_retry.max_attempts;
         ++attempt) {
      if (!RetryBudget::Global().TryWithdraw()) break;
      SleepForMillis(backoff.NextDelayMs());
      view_ok = !FaultHit(FaultPoint::kViewRead);
      if (view_ok) break;
      degradation_.view_read_faults++;
    }
  }
  if (!view_ok) {
    view_breaker_.OnFailure();
    metrics.fell_back_to_straightforward = true;
    metrics.degraded = true;
    metrics.degraded_reason =
        "transient view-read fault persisted through retry; answered by "
        "the straightforward plan";
    straightforward_plan("fallback: transient view-read fault");
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", "transient view-read fault");
    return straightforward_fold(span.ctx());
  }
  view_breaker_.OnSuccess();
  RetryBudget::Global().Deposit();

  metrics.used_view = true;
  metrics.plan = "stats: view scan over V_K (|K|=" +
                 std::to_string(view->def().num_columns()) + ", " +
                 std::to_string(view->NumTuples()) + " tuples)";
  if (parts.size() > 1) {
    metrics.plan +=
        " + " + std::to_string(parts.size() - 1) + " segment delta(s)";
  }
  SpanGuard span(tctx, "plan:view");
  span.Attr("view_columns",
            static_cast<uint64_t>(view->def().num_columns()));
  span.Attr("view_tuples", view->NumTuples());

  // Fold the base view with every segment's delta at the same catalog
  // index. Deltas share the base view's definition (columns, tracked
  // slots, year buckets), so coverage and range-answerability are decided
  // once by the base; the fold itself is again pure integer sums.
  CollectionStats stats;
  stats.df.assign(qstats.keywords.size(), 0);
  if (need_tc) stats.tc.assign(qstats.keywords.size(), 0);
  std::vector<bool> covered;
  for (const SearchPart& part : parts) {
    const MaterializedView* pv =
        part.view_deltas == nullptr
            ? view
            : &(*part.view_deltas)[static_cast<size_t>(view_idx)];
    MaterializedView::StatsResult vr = pv->ComputeStats(
        query.context, qstats.keywords, tracked_, &metrics.cost, query.years);
    if (part.view_deltas != nullptr) hot_.view_delta_folds->Increment();
    stats.cardinality += vr.cardinality;
    stats.total_length += vr.total_length;
    if (covered.empty()) covered = vr.covered;
    for (size_t i = 0; i < qstats.keywords.size(); ++i) {
      if (!vr.covered[i]) continue;
      stats.df[i] += vr.df[i];
      if (need_tc) stats.tc[i] += vr.tc[i];
    }
  }
  metrics.view_tuples_scanned = metrics.cost.view_tuples_scanned;
  span.Attr("view_tuples_scanned", metrics.view_tuples_scanned);

  // Keywords without a parameter column (|L_w| < T_C) are computed at
  // query time; their short lists make this cheap (Section 6.2). Cursors
  // are single-pass, so each keyword's conjunction gets a fresh set per
  // part.
  for (size_t i = 0; i < qstats.keywords.size(); ++i) {
    if (!covered.empty() && covered[i]) continue;
    metrics.keywords_uncovered_by_view++;
    SpanGuard kspan(span.ctx(), "intersect:df");
    CostCounters before;
    if (kspan) {
      before = metrics.cost;
      kspan.Attr("keyword", static_cast<uint64_t>(qstats.keywords[i]));
      kspan.Attr("lists",
                 static_cast<uint64_t>(query.context.size() + 1));
    }
    uint64_t df = 0;
    uint64_t tc = 0;
    bool strategy_attr = false;
    for (const SearchPart& part : parts) {
      std::vector<PostingCursor> cursors;
      cursors.push_back(
          part.content->cursor(qstats.keywords[i], &metrics.cost));
      if (!cursors.back().valid()) continue;
      bool ok = true;
      for (TermId m : query.context) {
        cursors.push_back(part.predicate->cursor(m, &metrics.cost));
        if (!cursors.back().valid()) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ConjunctionIterator it(std::move(cursors), guard);
      if (kspan && !strategy_attr) {
        kspan.Attr("strategy", it.StrategyMix());
        strategy_attr = true;
      }
      for (; !it.AtEnd(); it.Next()) {
        if (!query.years.Contains(part.years[it.doc()])) continue;
        ++df;
        tc += it.tf(0);
      }
      if (guard != nullptr && guard->tripped()) break;
    }
    stats.df[i] = df;
    if (need_tc) stats.tc[i] = tc;
    if (kspan) {
      kspan.Attr("df", df);
      AttrIntersectionCostDelta(kspan.get(), metrics.cost, before);
    }
  }
  if (metrics.keywords_uncovered_by_view > 0) {
    metrics.plan += " + " +
                    std::to_string(metrics.keywords_uncovered_by_view) +
                    " query-time df intersection(s) for untracked keywords";
  }
  return stats;
}

namespace {

/// The typed failure for a tripped guard when degradation is disabled (or
/// impossible). Never kInternal: callers branch on the taxonomy.
Status TripStatus(const ScanGuard& guard) {
  switch (guard.trip()) {
    case ScanGuard::Trip::kDeadline:
      return Status::DeadlineExceeded("query " + guard.TripReason());
    case ScanGuard::Trip::kBudget:
      return Status::ResourceExhausted("query " + guard.TripReason());
    case ScanGuard::Trip::kFault:
      return Status::DataLoss("query aborted: " + guard.TripReason());
    case ScanGuard::Trip::kNone:
      break;
  }
  return Status::Internal("TripStatus on untripped guard");
}

}  // namespace

void ContextSearchEngine::RecordTrip(const ScanGuard& guard) const {
  switch (guard.trip()) {
    case ScanGuard::Trip::kDeadline:
      degradation_.deadline_hits++;
      break;
    case ScanGuard::Trip::kBudget:
      degradation_.budget_hits++;
      break;
    case ScanGuard::Trip::kFault:
      degradation_.fault_trips++;
      break;
    case ScanGuard::Trip::kNone:
      break;
  }
}

Result<std::unique_ptr<PreparedSearch>> ContextSearchEngine::BeginSearch(
    const ContextQuery& query, EvaluationMode mode, double elapsed_ms) const {
  const bool record = metrics_enabled();
  if (query.keywords.empty()) {
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::InvalidArgument("query has no keywords");
  }
  if (mode != EvaluationMode::kConventional && query.context.empty()) {
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::InvalidArgument(
        "context-sensitive evaluation requires a context specification");
  }
  if (!std::is_sorted(query.context.begin(), query.context.end())) {
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::InvalidArgument("context predicates must be sorted");
  }
  if (config_.deadline_ms > 0 && elapsed_ms >= config_.deadline_ms) {
    // The deadline expired before execution began (typically in the
    // executor queue). Shed the query instead of starting work it is
    // already too late for; the degradation ladder cannot salvage a query
    // that never ran.
    degradation_.deadline_hits++;
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::DeadlineExceeded(
        "query deadline of " + FormatMillis(config_.deadline_ms) +
        " ms consumed before execution (" + FormatMillis(elapsed_ms) +
        " ms elapsed in queue)");
  }

  // One guard spans every stage: the deadline clock covers the whole
  // query — including time spent in inter-stage queues — and the posting
  // budget is re-granted once when the plan degrades.
  auto ps = std::make_unique<PreparedSearch>(
      query, mode, config_.top_k, config_.deadline_ms,
      config_.posting_scan_budget, elapsed_ms);
  ps->record = record;
  // Trace sampling: every Nth query records a full span tree. The trace
  // clock starts here, so span times are relative to execution start; the
  // executor's queue waits are attributed as attributes, not span time.
  if (ShouldTrace()) {
    ps->trace = std::make_shared<QueryTrace>();
    ps->root = TraceContext{ps->trace.get(), ps->trace->root()};
    ps->trace->root()->Attr("mode", EvaluationModeName(mode));
    ps->trace->root()->Attr("keywords",
                            static_cast<uint64_t>(query.keywords.size()));
    ps->trace->root()->Attr("context_predicates",
                            static_cast<uint64_t>(query.context.size()));
    ps->trace->root()->Attr("queue_wait_ms", elapsed_ms);
    if (record) hot_.traces_sampled->Increment();
  }
  {
    SpanGuard parse(ps->root, "parse");
    ps->qstats = QueryStats::FromKeywords(ps->query.keywords);
    parse.Attr("unique_keywords",
               static_cast<uint64_t>(ps->qstats.keywords.size()));
  }

  // One LiveSet snapshot serves the whole query: concurrent appends,
  // seals, and merges publish NEW snapshots and never mutate this one, so
  // every stage sees a single frozen collection.
  ps->live = SnapshotLive();
  ps->parts = MakeParts(*ps->live);
  if (ps->trace != nullptr && ps->parts.size() > 1) {
    ps->trace->root()->Attr("segments",
                            static_cast<uint64_t>(ps->parts.size()));
  }
  return ps;
}

Status ContextSearchEngine::SearchStats(PreparedSearch& ps) const {
  SearchResult& result = ps.result;
  // Phase 1: collection statistics.
  WallTimer stats_timer;
  {
    SpanGuard stats_span(ps.root, "stats");
    switch (ps.mode) {
      case EvaluationMode::kConventional:
        result.stats = FoldGlobalStats(ps.parts, ps.qstats.keywords);
        result.metrics.plan =
            "stats: precomputed global statistics (Qt = Qk ∪ P)";
        stats_span.Attr("plan", "conventional-global");
        break;
      case EvaluationMode::kContextStraightforward:
      case EvaluationMode::kContextWithViews: {
        bool with_views = ps.mode == EvaluationMode::kContextWithViews;
        std::optional<CollectionStats> cached;
        {
          SpanGuard lookup(stats_span.ctx(), "stats_cache_lookup");
          lookup.Attr("enabled", stats_cache_ != nullptr);
          // The snapshot's epoch is folded into the cache key, so an
          // entry cached before an append can never answer a query that
          // sees the appended documents (and vice versa).
          cached = stats_cache_ != nullptr
                       ? stats_cache_->Get(ps.query.context,
                                           ps.qstats.keywords, ps.query.years,
                                           ps.live->epoch)
                       : std::nullopt;
          lookup.Attr("hit", cached.has_value());
        }
        if (cached.has_value()) {
          result.stats = *std::move(cached);
          result.metrics.stats_cache_hit = true;
          result.metrics.plan = "stats: LRU cache hit";
          stats_span.Attr("plan", "cache-hit");
        } else {
          result.stats =
              ComputeContextStats(ps.query, ps.qstats, with_views,
                                  result.metrics, &ps.guard, ps.parts,
                                  stats_span.ctx());
          if (ps.guard.tripped()) {
            // Degradation rung 2: context statistics are partial, therefore
            // unusable — rank with the (precomputed, exact) global
            // statistics instead of failing or serving garbage.
            RecordTrip(ps.guard);
            if (ps.trace != nullptr) {
              ps.trace->Event(stats_span.get(), "event:degraded")
                  ->Attr("reason", ps.guard.TripReason());
            }
            if (!config_.degrade_gracefully) {
              if (ps.record) {
                RecordQueryMetrics(result.metrics, ps.mode, true);
              }
              return TripStatus(ps.guard);
            }
            result.stats = FoldGlobalStats(ps.parts, ps.qstats.keywords);
            result.metrics.degraded = true;
            result.metrics.degraded_reason =
                "context statistics abandoned (" + ps.guard.TripReason() +
                "); ranked with global collection statistics";
            result.metrics.plan += " -> degraded: global statistics";
            ps.guard.Reprieve();
          } else if (stats_cache_ != nullptr) {
            // Only exact statistics enter the cache.
            stats_cache_->Put(ps.query.context, ps.qstats.keywords,
                              ps.query.years, result.stats, ps.live->epoch);
          }
        }
        break;
      }
    }
  }
  result.metrics.stats_ms = stats_timer.ElapsedMillis();
  return Status::OK();
}

void ContextSearchEngine::ScorePending(PreparedSearch& ps) const {
  if (ps.pending.empty()) return;
  const size_t k = ps.qstats.keywords.size();
  DocStats dstats;
  dstats.tf.resize(k);
  size_t row = 0;
  for (const PreparedSearch::Match& m : ps.pending) {
    dstats.doc = m.doc;
    dstats.length = m.length;
    for (size_t i = 0; i < k; ++i) dstats.tf[i] = ps.pending_tfs[row + i];
    ps.collector.Offer(dstats.doc,
                       ranking_->Score(ps.qstats, dstats, ps.result.stats));
    row += k;
  }
  ps.pending.clear();
  ps.pending_tfs.clear();
}

Status ContextSearchEngine::SearchIntersect(PreparedSearch& ps) const {
  SearchResult& result = ps.result;
  // Phase 2: retrieval. The unranked result is the conjunction of all
  // keyword and predicate lists, evaluated most-selective-first with skips
  // (identical across modes — only the statistics differ). Matches are
  // scored in chunks as the intersection produces them (the score stage
  // drains the final chunk), so memory stays bounded and the Offer order
  // matches the fused loop exactly.
  constexpr size_t kScoreChunk = 4096;
  WallTimer retrieval_timer;
  SpanGuard retrieval_span(ps.root, "retrieval");

  // Per-part cursor sets: a keyword missing from one segment's dictionary
  // only rules that segment out. Parts are iterated in ascending docid
  // order through ONE shared collector, so ties resolve exactly as they
  // would over a flattened index.
  std::vector<std::pair<const SearchPart*, std::vector<PostingCursor>>> ready;
  for (const SearchPart& part : ps.parts) {
    std::vector<PostingCursor> cursors;
    bool part_empty = false;
    for (TermId w : ps.qstats.keywords) {
      cursors.push_back(part.content->cursor(w, &result.metrics.cost));
      if (!cursors.back().valid()) part_empty = true;
    }
    for (TermId m : ps.query.context) {
      cursors.push_back(part.predicate->cursor(m, &result.metrics.cost));
      if (!cursors.back().valid()) part_empty = true;
    }
    if (!part_empty) ready.emplace_back(&part, std::move(cursors));
  }

  if (!ready.empty()) {
    SpanGuard ispan(retrieval_span.ctx(), "intersect:retrieval");
    CostCounters before;
    if (ispan) before = result.metrics.cost;
    const size_t k = ps.qstats.keywords.size();
    bool shape_attrs = false;
    for (auto& [part, cursors] : ready) {
      ConjunctionIterator it(std::move(cursors), &ps.guard);
      if (ispan && !shape_attrs) {
        ispan.Attr("lists", static_cast<uint64_t>(it.num_lists()));
        ispan.Attr("strategy", it.StrategyMix());
        ispan.Attr("scoring", ranking_->name());
        ispan.Attr("top_k", static_cast<uint64_t>(config_.top_k));
        if (ready.size() > 1) {
          ispan.Attr("segments", static_cast<uint64_t>(ready.size()));
        }
        shape_attrs = true;
      }
      for (; !it.AtEnd(); it.Next()) {
        if (!ps.query.years.Contains(part->years[it.doc()])) continue;
        result.result_count++;
        ps.pending.push_back(PreparedSearch::Match{
            part->base + it.doc(), part->content->doc_length(it.doc())});
        // tfs are read at match time — the lazy per-block tf decode (and
        // its cost charge) happens exactly where the fused loop paid it.
        for (size_t i = 0; i < k; ++i) ps.pending_tfs.push_back(it.tf(i));
        if (ps.pending.size() >= kScoreChunk) ScorePending(ps);
      }
      if (it.aborted()) {
        ps.retrieval_aborted = true;
        break;
      }
    }
    if (ispan) {
      ispan.Attr("docs_scored", result.result_count);
      ispan.Attr("aborted", ps.retrieval_aborted);
      AttrIntersectionCostDelta(ispan.get(), result.metrics.cost, before);
    }
  }

  if (ps.retrieval_aborted) {
    // Degradation rung 3: partial top-k over the documents seen so far.
    RecordTrip(ps.guard);
    if (ps.trace != nullptr) {
      ps.trace->Event(retrieval_span.get(), "event:degraded")
          ->Attr("reason", ps.guard.TripReason());
    }
    if (!config_.degrade_gracefully || result.result_count == 0) {
      // With degradation off, fail typed. With nothing salvaged, also fail
      // typed — an empty "success" would be indistinguishable from a real
      // empty result.
      if (ps.record) RecordQueryMetrics(result.metrics, ps.mode, true);
      return TripStatus(ps.guard);
    }
    result.metrics.degraded = true;
    if (!result.metrics.degraded_reason.empty()) {
      result.metrics.degraded_reason += "; ";
    }
    result.metrics.degraded_reason +=
        "retrieval stopped early (" + ps.guard.TripReason() +
        "); top-k ranks the " + std::to_string(result.result_count) +
        " documents matched before the stop";
  }
  retrieval_span.End();
  result.metrics.retrieval_ms += retrieval_timer.ElapsedMillis();
  return Status::OK();
}

Result<SearchResult> ContextSearchEngine::FinishSearch(
    PreparedSearch& ps) const {
  SearchResult& result = ps.result;
  WallTimer score_timer;
  ScorePending(ps);
  result.top_docs = ps.collector.Take();
  if (result.metrics.degraded) degradation_.degraded_queries++;

  result.metrics.retrieval_ms += score_timer.ElapsedMillis();
  result.metrics.total_ms = ps.total_timer.ElapsedMillis();
  result.metrics.plan += "; retrieval: " +
                         std::to_string(ps.qstats.keywords.size() +
                                        ps.query.context.size()) +
                         "-way conjunction, most selective first, top-" +
                         std::to_string(config_.top_k);
  if (ps.retrieval_aborted) result.metrics.plan += " (partial)";
  if (ps.record) RecordQueryMetrics(result.metrics, ps.mode, /*failed=*/false);
  if (ps.trace != nullptr) {
    ps.trace->root()->Attr("degraded", result.metrics.degraded);
    ps.trace->Finish();
    result.trace = std::move(ps.trace);
  }
  return std::move(result);
}

void ContextSearchEngine::NoteStageWait(PreparedSearch& ps,
                                        std::string_view stage,
                                        double wait_ms) const {
  ps.guard.AddQueueWait(wait_ms);
  if (ps.trace != nullptr) {
    ps.trace->Event(ps.root.parent, "stage:" + std::string(stage))
        ->Attr("queue_wait_ms", wait_ms);
  }
}

Result<SearchResult> ContextSearchEngine::Search(const ContextQuery& query,
                                                 EvaluationMode mode,
                                                 double elapsed_ms) const {
  // Exactly the staged pipeline's sequence, run inline — pipelined and
  // sequential execution are bit-identical by construction.
  Result<std::unique_ptr<PreparedSearch>> prep =
      BeginSearch(query, mode, elapsed_ms);
  if (!prep.ok()) return prep.status();
  PreparedSearch& ps = **prep;
  if (Status s = SearchStats(ps); !s.ok()) return s;
  if (Status s = SearchIntersect(ps); !s.ok()) return s;
  return FinishSearch(ps);
}

}  // namespace csr
