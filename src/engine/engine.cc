#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "engine/top_k.h"
#include "index/intersection.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace csr {

std::string_view EvaluationModeName(EvaluationMode mode) {
  switch (mode) {
    case EvaluationMode::kConventional:
      return "conventional";
    case EvaluationMode::kContextStraightforward:
      return "context-straightforward";
    case EvaluationMode::kContextWithViews:
      return "context-with-views";
  }
  return "unknown";
}

Result<std::unique_ptr<ContextSearchEngine>> ContextSearchEngine::Build(
    Corpus corpus, EngineConfig config) {
  if (corpus.docs.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  auto engine = std::unique_ptr<ContextSearchEngine>(new ContextSearchEngine());
  engine->corpus_ = std::move(corpus);
  engine->config_ = config;
  engine->ranking_ = MakeRankingFunction(config.ranking);
  if (engine->ranking_ == nullptr) {
    return Status::InvalidArgument("unknown ranking function: " +
                                   config.ranking);
  }
  if (engine->ranking_->NeedsTermCounts() && !config.track_tc) {
    return Status::InvalidArgument(
        "ranking function '" + config.ranking +
        "' needs tc statistics; set EngineConfig::track_tc");
  }

  // Content and predicate indexes.
  IndexBuilder content_builder(config.segment_size);
  IndexBuilder predicate_builder(config.segment_size);
  for (const Document& d : engine->corpus_.docs) {
    CSR_RETURN_NOT_OK(content_builder.AddDocument(d.id, d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(d.id, d.annotations));
  }
  engine->content_index_ = content_builder.Build();
  engine->predicate_index_ = predicate_builder.Build();
  return Finish(std::move(engine));
}

Result<std::unique_ptr<ContextSearchEngine>>
ContextSearchEngine::BuildWithIndexes(Corpus corpus, EngineConfig config,
                                      InvertedIndex content_index,
                                      InvertedIndex predicate_index) {
  if (corpus.docs.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.top_k == 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  if (content_index.num_docs() != corpus.docs.size() ||
      predicate_index.num_docs() != corpus.docs.size()) {
    return Status::InvalidArgument(
        "indexes cover " + std::to_string(content_index.num_docs()) + "/" +
        std::to_string(predicate_index.num_docs()) +
        " documents but the corpus has " + std::to_string(corpus.docs.size()));
  }
  auto engine = std::unique_ptr<ContextSearchEngine>(new ContextSearchEngine());
  engine->corpus_ = std::move(corpus);
  engine->config_ = config;
  engine->ranking_ = MakeRankingFunction(config.ranking);
  if (engine->ranking_ == nullptr) {
    return Status::InvalidArgument("unknown ranking function: " +
                                   config.ranking);
  }
  if (engine->ranking_->NeedsTermCounts() && !config.track_tc) {
    return Status::InvalidArgument(
        "ranking function '" + config.ranking +
        "' needs tc statistics; set EngineConfig::track_tc");
  }
  engine->content_index_ = std::move(content_index);
  engine->predicate_index_ = std::move(predicate_index);
  return Finish(std::move(engine));
}

Result<std::unique_ptr<ContextSearchEngine>> ContextSearchEngine::Finish(
    std::unique_ptr<ContextSearchEngine> engine) {
  const EngineConfig& config = engine->config_;
  if (config.compressed_postings) engine->CompactIndexes();

  engine->years_.reserve(engine->corpus_.docs.size());
  for (const Document& d : engine->corpus_.docs) {
    engine->years_.push_back(d.year);
  }

  engine->context_threshold_ = static_cast<uint64_t>(
      config.context_threshold_fraction *
      static_cast<double>(engine->corpus_.docs.size()));
  if (engine->context_threshold_ == 0) engine->context_threshold_ = 1;

  engine->tracked_ = TrackedKeywords::Select(
      engine->content_index_, engine->context_threshold_, config.tracked_cap);
  engine->param_table_ = std::make_unique<DocParamTable>(
      DocParamTable::Build(engine->content_index_, engine->tracked_));
  engine->estimator_ = std::make_unique<ViewSizeEstimator>(
      &engine->corpus_, /*seed=*/engine->corpus_.config.seed ^ 0x5EED,
      config.estimator_sample);
  engine->atm_ = std::make_unique<AtmMapper>(&engine->corpus_,
                                             &engine->content_index_,
                                             &engine->predicate_index_);
  if (config.stats_cache_capacity > 0) {
    engine->stats_cache_ =
        std::make_unique<StatsCache>(config.stats_cache_capacity);
  }
  engine->metrics_enabled_.store(config.metrics_enabled,
                                 std::memory_order_relaxed);
  engine->view_breaker_.Configure(config.view_breaker);
  engine->set_trace_sample_rate(config.trace_sample_rate);
  engine->RegisterMetrics();
  return engine;
}

void ContextSearchEngine::set_trace_sample_rate(double rate) {
  uint32_t period = 0;
  if (rate >= 1.0) {
    period = 1;
  } else if (rate > 0.0) {
    period = static_cast<uint32_t>(std::lround(1.0 / rate));
    if (period == 0) period = 1;
  }
  trace_period_.store(period, std::memory_order_relaxed);
}

bool ContextSearchEngine::ShouldTrace() const {
  uint32_t period = trace_period_.load(std::memory_order_relaxed);
  if (period == 0) return false;
  uint64_t seq = trace_sequence_.fetch_add(1, std::memory_order_relaxed);
  return seq % period == 0;
}

void ContextSearchEngine::RegisterMetrics() {
  // Hot-path instruments: resolved once here, updated through the cached
  // pointers with relaxed atomics (no lock, no name lookup per query).
  hot_.queries = &registry_.GetCounter("engine.queries");
  hot_.queries_failed = &registry_.GetCounter("engine.queries_failed");
  hot_.queries_degraded = &registry_.GetCounter("engine.queries_degraded");
  hot_.traces_sampled = &registry_.GetCounter("engine.traces_sampled");
  hot_.plan_view_hits = &registry_.GetCounter("engine.plan.view_hits");
  hot_.plan_straightforward =
      &registry_.GetCounter("engine.plan.straightforward");
  hot_.plan_conventional = &registry_.GetCounter("engine.plan.conventional");
  hot_.plan_cache_hits =
      &registry_.GetCounter("engine.plan.stats_cache_hits");
  hot_.plan_view_fallbacks =
      &registry_.GetCounter("engine.plan.view_fallbacks");
  hot_.cost_entries_scanned =
      &registry_.GetCounter("engine.cost.entries_scanned");
  hot_.cost_segments_touched =
      &registry_.GetCounter("engine.cost.segments_touched");
  hot_.cost_skips_taken = &registry_.GetCounter("engine.cost.skips_taken");
  hot_.cost_aggregation_entries =
      &registry_.GetCounter("engine.cost.aggregation_entries");
  hot_.cost_view_tuples_scanned =
      &registry_.GetCounter("engine.cost.view_tuples_scanned");
  hot_.cost_blocks_skipped =
      &registry_.GetCounter("engine.cost.blocks_skipped");
  hot_.cost_bytes_touched =
      &registry_.GetCounter("engine.cost.bytes_touched");
  hot_.total_ms = &registry_.GetHistogram("engine.latency.total_ms");
  hot_.stats_ms = &registry_.GetHistogram("engine.latency.stats_ms");
  hot_.retrieval_ms = &registry_.GetHistogram("engine.latency.retrieval_ms");

  // Legacy counters register INTO the registry via sample callbacks: each
  // struct stays authoritative (existing accessors and tests unchanged) and
  // is read under its own synchronization discipline only at Snapshot time.
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    const DegradationStats& d = degradation_;  // relaxed atomics
    snap.counters["engine.degradation.views_quarantined"] =
        d.views_quarantined;
    snap.counters["engine.degradation.quarantine_fallbacks"] =
        d.quarantine_fallbacks;
    snap.counters["engine.degradation.deadline_hits"] = d.deadline_hits;
    snap.counters["engine.degradation.budget_hits"] = d.budget_hits;
    snap.counters["engine.degradation.fault_trips"] = d.fault_trips;
    snap.counters["engine.degradation.degraded_queries"] = d.degraded_queries;
    snap.counters["engine.degradation.view_read_faults"] =
        d.view_read_faults;
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    // Overload-resilience telemetry (DESIGN.md §13). The budget is
    // process-wide (one bucket shared by every retried site); the breaker
    // is this engine's view-path breaker. Both are internally
    // synchronized leaf components, safe to read under the registry mutex.
    const RetryBudget& budget = RetryBudget::Global();
    snap.counters["retry.withdrawals"] = budget.withdrawals();
    snap.counters["retry.denials"] = budget.denials();
    snap.counters["retry.deposits"] = budget.deposits();
    snap.gauges["retry.tokens"] = budget.tokens();
    snap.gauges["retry.capacity"] = budget.capacity();
    snap.counters["breaker.trips"] = view_breaker_.trips();
    snap.counters["breaker.recoveries"] = view_breaker_.recoveries();
    snap.counters["breaker.short_circuits"] = view_breaker_.short_circuits();
    snap.counters["breaker.probes"] = view_breaker_.probes();
    snap.gauges["breaker.state"] =
        static_cast<double>(static_cast<uint32_t>(view_breaker_.state()));
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    if (stats_cache_ == nullptr) return;
    // Each accessor sums the shards under their own mutexes; monotonic but
    // not one atomic cross-shard snapshot (the StatsCache contract).
    snap.counters["engine.stats_cache.hits"] = stats_cache_->hits();
    snap.counters["engine.stats_cache.misses"] = stats_cache_->misses();
    snap.counters["engine.stats_cache.evictions"] =
        stats_cache_->evictions();
    snap.gauges["engine.stats_cache.entries"] =
        static_cast<double>(stats_cache_->size());
  });
  registry_.AddSampleCallback([this](csr::MetricsSnapshot& snap) {
    // Catalog shape. Search holds no lock on the catalog (it is immutable
    // during serving; mutators require exclusive access), so neither does
    // this sample.
    snap.gauges["engine.views.materialized"] =
        static_cast<double>(catalog_.size());
    snap.gauges["engine.views.quarantined"] =
        static_cast<double>(catalog_.quarantined().size());
  });
}

void ContextSearchEngine::RecordQueryMetrics(const SearchMetrics& m,
                                             EvaluationMode mode,
                                             bool failed) const {
  hot_.queries->Increment();
  if (failed) {
    hot_.queries_failed->Increment();
    return;
  }
  if (m.degraded) hot_.queries_degraded->Increment();
  // Plan-choice accounting: exactly one plan counter per successful query,
  // classifying how the statistics phase was answered.
  if (mode == EvaluationMode::kConventional) {
    hot_.plan_conventional->Increment();
  } else if (m.stats_cache_hit) {
    hot_.plan_cache_hits->Increment();
  } else if (m.used_view) {
    hot_.plan_view_hits->Increment();
  } else if (m.fell_back_to_straightforward) {
    hot_.plan_view_fallbacks->Increment();
  } else {
    hot_.plan_straightforward->Increment();
  }
  hot_.cost_entries_scanned->Increment(m.cost.entries_scanned);
  hot_.cost_segments_touched->Increment(m.cost.segments_touched);
  hot_.cost_skips_taken->Increment(m.cost.skips_taken);
  hot_.cost_aggregation_entries->Increment(m.cost.aggregation_entries);
  hot_.cost_view_tuples_scanned->Increment(m.cost.view_tuples_scanned);
  hot_.cost_blocks_skipped->Increment(m.cost.blocks_skipped);
  hot_.cost_bytes_touched->Increment(m.cost.bytes_touched);
  hot_.total_ms->Observe(m.total_ms);
  hot_.stats_ms->Observe(m.stats_ms);
  hot_.retrieval_ms->Observe(m.retrieval_ms);
}

void ContextSearchEngine::CompactIndexes() {
  content_index_.Compact(/*block_size=*/0, config_.codec_policy);
  predicate_index_.Compact(/*block_size=*/0, config_.codec_policy);
  catalog_.CompactAll();
}

uint64_t ContextSearchEngine::ContextSize(
    std::span<const TermId> context) const {
  std::vector<PostingCursor> cursors;
  cursors.reserve(context.size());
  for (TermId m : context) {
    PostingCursor c = predicate_index_.cursor(m);
    if (!c.valid()) return 0;
    cursors.push_back(std::move(c));
  }
  return CountIntersection(std::move(cursors));
}

Status ContextSearchEngine::SelectAndMaterializeViews() {
  TransactionDb db = TransactionDb::FromCorpus(corpus_);
  Kag kag = Kag::Build(db, context_threshold_, context_threshold_);
  SupportFn support = MakeIndexSupportFn(predicate_index_);

  HybridConfig hconfig;
  hconfig.thresholds.context_threshold = context_threshold_;
  hconfig.thresholds.view_size_threshold = config_.view_size_threshold;
  selection_ = SelectViewsHybrid(db, kag, *estimator_, support, hconfig);

  // Deduplicate identical keyword sets produced by different branches.
  std::unordered_set<uint64_t> seen;
  std::vector<ViewDefinition> defs;
  for (ViewDefinition& v : selection_.views) {
    uint64_t h = HashTermIds(v.keyword_columns);
    if (seen.insert(h).second) defs.push_back(std::move(v));
  }
  selection_.views.clear();
  return MaterializeViews(std::move(defs));
}

Status ContextSearchEngine::MaterializeViews(std::vector<ViewDefinition> defs) {
  ViewParamOptions params;
  params.track_df = true;
  params.track_tc = config_.track_tc;
  params.year_bucket_size = config_.view_year_bucket;
  ViewBuilder builder(&corpus_, param_table_.get(), params,
                      static_cast<uint32_t>(tracked_.size()));
  std::vector<MaterializedView> views = builder.BuildAll(defs);
  catalog_ = ViewCatalog();
  for (MaterializedView& v : views) catalog_.Add(std::move(v));
  if (config_.compressed_postings) catalog_.CompactAll();
  return Status::OK();
}

Status ContextSearchEngine::AppendDocuments(std::vector<Document> docs) {
  if (docs.empty()) return Status::OK();
  DocId first_new = static_cast<DocId>(corpus_.docs.size());

  DocId next = first_new;
  for (Document& d : docs) {
    d.id = next++;
    std::sort(d.annotations.begin(), d.annotations.end());
    d.annotations.erase(
        std::unique(d.annotations.begin(), d.annotations.end()),
        d.annotations.end());
    corpus_.docs.push_back(std::move(d));
  }

  // Rebuild the inverted indexes over the grown collection. (A segmented
  // index would avoid the rebuild; the view maintenance below is the part
  // this library makes incremental, because selection + materialized
  // aggregates are the expensive artifacts.)
  IndexBuilder content_builder(config_.segment_size);
  IndexBuilder predicate_builder(config_.segment_size);
  for (const Document& d : corpus_.docs) {
    CSR_RETURN_NOT_OK(content_builder.AddDocument(d.id, d.ContentTokens()));
    CSR_RETURN_NOT_OK(predicate_builder.AddDocument(d.id, d.annotations));
  }
  content_index_ = content_builder.Build();
  predicate_index_ = predicate_builder.Build();
  if (config_.compressed_postings) {
    content_index_.Compact(/*block_size=*/0, config_.codec_policy);
    predicate_index_.Compact(/*block_size=*/0, config_.codec_policy);
  }

  years_.clear();
  years_.reserve(corpus_.docs.size());
  for (const Document& d : corpus_.docs) years_.push_back(d.year);

  // tracked_ is intentionally NOT recomputed: view parameter columns are
  // slot-aligned to it. The param table must cover the new documents.
  param_table_ = std::make_unique<DocParamTable>(
      DocParamTable::Build(content_index_, tracked_));
  estimator_ = std::make_unique<ViewSizeEstimator>(
      &corpus_, corpus_.config.seed ^ 0x5EED, config_.estimator_sample);
  atm_ = std::make_unique<AtmMapper>(&corpus_, &content_index_,
                                     &predicate_index_);
  if (stats_cache_ != nullptr) stats_cache_->Clear();

  // Incremental view maintenance: fold only the new documents.
  if (catalog_.size() > 0) {
    std::vector<MaterializedView> views = catalog_.Release();
    ViewParamOptions params;
    params.track_df = true;
    params.track_tc = config_.track_tc;
    params.year_bucket_size = config_.view_year_bucket;
    ViewBuilder builder(&corpus_, param_table_.get(), params,
                        static_cast<uint32_t>(tracked_.size()));
    builder.UpdateAll(views, first_new);
    for (MaterializedView& v : views) catalog_.Add(std::move(v));
    if (config_.compressed_postings) catalog_.CompactAll();
  }
  return Status::OK();
}

Status ContextSearchEngine::InstallCatalog(
    ViewCatalog catalog, const std::vector<TermId>& tracked_terms) {
  if (tracked_terms != tracked_.terms()) {
    return Status::FailedPrecondition(
        "snapshot tracked keywords do not match this engine's; was the "
        "EngineConfig changed since the snapshot was taken?");
  }
  degradation_.views_quarantined += catalog.quarantined().size();
  catalog_ = std::move(catalog);
  if (config_.compressed_postings) catalog_.CompactAll();
  return Status::OK();
}

CollectionStats ContextSearchEngine::ComputeContextStats(
    const ContextQuery& query, const QueryStats& qstats, bool with_views,
    SearchMetrics& metrics, ScanGuard* guard, TraceContext tctx) const {
  bool need_tc = ranking_->NeedsTermCounts();

  auto straightforward_plan = [&](std::string_view reason) {
    metrics.plan = "stats: straightforward (Figure 3): gamma over ";
    metrics.plan += std::to_string(query.context.size());
    metrics.plan += "-way context intersection + ";
    metrics.plan += std::to_string(qstats.keywords.size());
    metrics.plan += " per-keyword intersections";
    if (!reason.empty()) {
      metrics.plan += " [";
      metrics.plan += reason;
      metrics.plan += "]";
    }
  };

  if (!with_views) {
    straightforward_plan("");
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", "views disabled for this mode");
    return StraightforwardCollectionStats(
        content_index_, predicate_index_, query.context, qstats.keywords,
        need_tc, &metrics.cost, years_, query.years, guard, span.ctx());
  }

  const MaterializedView* view = catalog_.FindBest(query.context);
  if (view == nullptr ||
      (query.years.active() && !view->RangeAnswerable(query.years))) {
    metrics.fell_back_to_straightforward = true;
    std::string reason = view == nullptr
                             ? "fallback: no usable view"
                             : "fallback: year range not bucket-aligned";
    if (view == nullptr) {
      // Attribute the miss when the covering view was dropped at snapshot
      // load: the fallback is then a degradation, not a planning choice.
      const QuarantinedView* q =
          catalog_.FindQuarantinedCovering(query.context);
      if (q != nullptr) {
        metrics.degraded = true;
        metrics.degraded_reason =
            "view for this context was quarantined at load (" + q->reason +
            "); answered by the straightforward plan";
        reason = "fallback: covering view quarantined";
        degradation_.quarantine_fallbacks++;
      }
    }
    straightforward_plan(reason);
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", reason);
    return StraightforwardCollectionStats(
        content_index_, predicate_index_, query.context, qstats.keywords,
        need_tc, &metrics.cost, years_, query.years, guard, span.ctx());
  }

  // -- Overload resilience on the view path (DESIGN.md §13) -------------
  // The view read is a dependency that can fail transiently (injection
  // point kViewRead). A circuit breaker gates it: while open, queries
  // short-circuit straight to the straightforward plan without touching
  // the view. Because views are exact aggregates, both plans produce
  // bit-identical scores — a short-circuit is a plan choice, not a
  // degradation.
  if (!view_breaker_.Allow()) {
    metrics.fell_back_to_straightforward = true;
    straightforward_plan("fallback: view circuit breaker open");
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", "view circuit breaker open");
    return StraightforwardCollectionStats(
        content_index_, predicate_index_, query.context, qstats.keywords,
        need_tc, &metrics.cost, years_, query.years, guard, span.ctx());
  }
  // Transient fault on the read itself: retry within the process-wide
  // budget (a storm drains the bucket and fails fast into the fallback
  // instead of multiplying load), then report the outcome to the breaker.
  bool view_ok = !FaultHit(FaultPoint::kViewRead);
  if (!view_ok) {
    degradation_.view_read_faults++;
    DecorrelatedJitterBackoff backoff(config_.view_retry,
                                      /*seed=*/0xB0FF5EEDULL);
    for (uint32_t attempt = 1; attempt < config_.view_retry.max_attempts;
         ++attempt) {
      if (!RetryBudget::Global().TryWithdraw()) break;
      SleepForMillis(backoff.NextDelayMs());
      view_ok = !FaultHit(FaultPoint::kViewRead);
      if (view_ok) break;
      degradation_.view_read_faults++;
    }
  }
  if (!view_ok) {
    view_breaker_.OnFailure();
    metrics.fell_back_to_straightforward = true;
    metrics.degraded = true;
    metrics.degraded_reason =
        "transient view-read fault persisted through retry; answered by "
        "the straightforward plan";
    straightforward_plan("fallback: transient view-read fault");
    SpanGuard span(tctx, "plan:straightforward");
    span.Attr("reason", "transient view-read fault");
    return StraightforwardCollectionStats(
        content_index_, predicate_index_, query.context, qstats.keywords,
        need_tc, &metrics.cost, years_, query.years, guard, span.ctx());
  }
  view_breaker_.OnSuccess();
  RetryBudget::Global().Deposit();

  metrics.used_view = true;
  metrics.plan = "stats: view scan over V_K (|K|=" +
                 std::to_string(view->def().num_columns()) + ", " +
                 std::to_string(view->NumTuples()) + " tuples)";
  SpanGuard span(tctx, "plan:view");
  span.Attr("view_columns",
            static_cast<uint64_t>(view->def().num_columns()));
  span.Attr("view_tuples", view->NumTuples());
  MaterializedView::StatsResult vr = view->ComputeStats(
      query.context, qstats.keywords, tracked_, &metrics.cost, query.years);
  metrics.view_tuples_scanned = metrics.cost.view_tuples_scanned;
  span.Attr("view_tuples_scanned", metrics.view_tuples_scanned);

  CollectionStats stats;
  stats.cardinality = vr.cardinality;
  stats.total_length = vr.total_length;
  stats.df.resize(qstats.keywords.size(), 0);
  if (need_tc) stats.tc.resize(qstats.keywords.size(), 0);

  // Keywords without a parameter column (|L_w| < T_C) are computed at
  // query time; their short lists make this cheap (Section 6.2). Cursors
  // are single-pass, so each keyword's conjunction gets a fresh set.
  for (size_t i = 0; i < qstats.keywords.size(); ++i) {
    if (vr.covered[i]) {
      stats.df[i] = vr.df[i];
      if (need_tc) stats.tc[i] = vr.tc[i];
      continue;
    }
    metrics.keywords_uncovered_by_view++;
    SpanGuard kspan(span.ctx(), "intersect:df");
    CostCounters before;
    if (kspan) {
      before = metrics.cost;
      kspan.Attr("keyword", static_cast<uint64_t>(qstats.keywords[i]));
      kspan.Attr("lists",
                 static_cast<uint64_t>(query.context.size() + 1));
    }
    std::vector<PostingCursor> cursors;
    cursors.push_back(
        content_index_.cursor(qstats.keywords[i], &metrics.cost));
    if (!cursors.back().valid()) continue;
    bool ok = true;
    for (TermId m : query.context) {
      cursors.push_back(predicate_index_.cursor(m, &metrics.cost));
      if (!cursors.back().valid()) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    uint64_t df = 0;
    uint64_t tc = 0;
    ConjunctionIterator it(std::move(cursors), guard);
    if (kspan) kspan.Attr("strategy", it.StrategyMix());
    for (; !it.AtEnd(); it.Next()) {
      if (!query.years.Contains(years_[it.doc()])) continue;
      ++df;
      tc += it.tf(0);
    }
    stats.df[i] = df;
    if (need_tc) stats.tc[i] = tc;
    if (kspan) {
      kspan.Attr("df", df);
      AttrIntersectionCostDelta(kspan.get(), metrics.cost, before);
    }
  }
  if (metrics.keywords_uncovered_by_view > 0) {
    metrics.plan += " + " +
                    std::to_string(metrics.keywords_uncovered_by_view) +
                    " query-time df intersection(s) for untracked keywords";
  }
  return stats;
}

namespace {

/// The typed failure for a tripped guard when degradation is disabled (or
/// impossible). Never kInternal: callers branch on the taxonomy.
Status TripStatus(const ScanGuard& guard) {
  switch (guard.trip()) {
    case ScanGuard::Trip::kDeadline:
      return Status::DeadlineExceeded("query " + guard.TripReason());
    case ScanGuard::Trip::kBudget:
      return Status::ResourceExhausted("query " + guard.TripReason());
    case ScanGuard::Trip::kFault:
      return Status::DataLoss("query aborted: " + guard.TripReason());
    case ScanGuard::Trip::kNone:
      break;
  }
  return Status::Internal("TripStatus on untripped guard");
}

}  // namespace

void ContextSearchEngine::RecordTrip(const ScanGuard& guard) const {
  switch (guard.trip()) {
    case ScanGuard::Trip::kDeadline:
      degradation_.deadline_hits++;
      break;
    case ScanGuard::Trip::kBudget:
      degradation_.budget_hits++;
      break;
    case ScanGuard::Trip::kFault:
      degradation_.fault_trips++;
      break;
    case ScanGuard::Trip::kNone:
      break;
  }
}

Result<SearchResult> ContextSearchEngine::Search(const ContextQuery& query,
                                                 EvaluationMode mode,
                                                 double elapsed_ms) const {
  const bool record = metrics_enabled();
  if (query.keywords.empty()) {
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::InvalidArgument("query has no keywords");
  }
  if (mode != EvaluationMode::kConventional && query.context.empty()) {
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::InvalidArgument(
        "context-sensitive evaluation requires a context specification");
  }
  if (!std::is_sorted(query.context.begin(), query.context.end())) {
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::InvalidArgument("context predicates must be sorted");
  }
  if (config_.deadline_ms > 0 && elapsed_ms >= config_.deadline_ms) {
    // The deadline expired before execution began (typically in the
    // executor queue). Shed the query instead of starting work it is
    // already too late for; the degradation ladder cannot salvage a query
    // that never ran.
    degradation_.deadline_hits++;
    if (record) RecordQueryMetrics(SearchMetrics{}, mode, /*failed=*/true);
    return Status::DeadlineExceeded(
        "query deadline of " + FormatMillis(config_.deadline_ms) +
        " ms consumed before execution (" + FormatMillis(elapsed_ms) +
        " ms elapsed in queue)");
  }

  WallTimer total_timer;
  // Trace sampling: every Nth query records a full span tree. The trace
  // clock starts here, so span times are relative to execution start; the
  // executor's queue wait is attributed as an attribute, not span time.
  std::shared_ptr<QueryTrace> trace;
  TraceContext root;
  if (ShouldTrace()) {
    trace = std::make_shared<QueryTrace>();
    root = TraceContext{trace.get(), trace->root()};
    trace->root()->Attr("mode", EvaluationModeName(mode));
    trace->root()->Attr("keywords",
                        static_cast<uint64_t>(query.keywords.size()));
    trace->root()->Attr("context_predicates",
                        static_cast<uint64_t>(query.context.size()));
    trace->root()->Attr("queue_wait_ms", elapsed_ms);
    if (record) hot_.traces_sampled->Increment();
  }
  // One guard spans both phases: the deadline clock covers the whole
  // query — including time already spent queued — and the posting budget
  // is re-granted once when the plan degrades.
  ScanGuard guard(config_.deadline_ms, config_.posting_scan_budget,
                  elapsed_ms);
  SearchResult result;
  QueryStats qstats;
  {
    SpanGuard parse(root, "parse");
    qstats = QueryStats::FromKeywords(query.keywords);
    parse.Attr("unique_keywords",
               static_cast<uint64_t>(qstats.keywords.size()));
  }

  // Phase 1: collection statistics.
  WallTimer stats_timer;
  {
    SpanGuard stats_span(root, "stats");
    switch (mode) {
      case EvaluationMode::kConventional:
        result.stats = GlobalCollectionStats(content_index_, qstats.keywords);
        result.metrics.plan =
            "stats: precomputed global statistics (Qt = Qk ∪ P)";
        stats_span.Attr("plan", "conventional-global");
        break;
      case EvaluationMode::kContextStraightforward:
      case EvaluationMode::kContextWithViews: {
        bool with_views = mode == EvaluationMode::kContextWithViews;
        std::optional<CollectionStats> cached;
        {
          SpanGuard lookup(stats_span.ctx(), "stats_cache_lookup");
          lookup.Attr("enabled", stats_cache_ != nullptr);
          cached = stats_cache_ != nullptr
                       ? stats_cache_->Get(query.context, qstats.keywords,
                                           query.years)
                       : std::nullopt;
          lookup.Attr("hit", cached.has_value());
        }
        if (cached.has_value()) {
          result.stats = *std::move(cached);
          result.metrics.stats_cache_hit = true;
          result.metrics.plan = "stats: LRU cache hit";
          stats_span.Attr("plan", "cache-hit");
        } else {
          result.stats =
              ComputeContextStats(query, qstats, with_views, result.metrics,
                                  &guard, stats_span.ctx());
          if (guard.tripped()) {
            // Degradation rung 2: context statistics are partial, therefore
            // unusable — rank with the (precomputed, exact) global
            // statistics instead of failing or serving garbage.
            RecordTrip(guard);
            if (trace != nullptr) {
              trace->Event(stats_span.get(), "event:degraded")
                  ->Attr("reason", guard.TripReason());
            }
            if (!config_.degrade_gracefully) {
              if (record) RecordQueryMetrics(result.metrics, mode, true);
              return TripStatus(guard);
            }
            result.stats =
                GlobalCollectionStats(content_index_, qstats.keywords);
            result.metrics.degraded = true;
            result.metrics.degraded_reason =
                "context statistics abandoned (" + guard.TripReason() +
                "); ranked with global collection statistics";
            result.metrics.plan += " -> degraded: global statistics";
            guard.Reprieve();
          } else if (stats_cache_ != nullptr) {
            // Only exact statistics enter the cache.
            stats_cache_->Put(query.context, qstats.keywords, query.years,
                              result.stats);
          }
        }
        break;
      }
    }
  }
  result.metrics.stats_ms = stats_timer.ElapsedMillis();

  // Phase 2: retrieval + scoring. The unranked result is the conjunction of
  // all keyword and predicate lists, evaluated most-selective-first with
  // skips (identical across modes — only the statistics differ).
  WallTimer retrieval_timer;
  SpanGuard retrieval_span(root, "retrieval");
  std::vector<PostingCursor> cursors;
  bool empty_result = false;
  for (TermId w : qstats.keywords) {
    cursors.push_back(content_index_.cursor(w, &result.metrics.cost));
    if (!cursors.back().valid()) empty_result = true;
  }
  for (TermId m : query.context) {
    cursors.push_back(predicate_index_.cursor(m, &result.metrics.cost));
    if (!cursors.back().valid()) empty_result = true;
  }

  bool retrieval_aborted = false;
  if (!empty_result) {
    // One span covers the fused conjunction + scoring loop: documents are
    // scored as the intersection produces them, so the two are not
    // separable in time.
    SpanGuard ispan(retrieval_span.ctx(), "intersect:retrieval");
    CostCounters before;
    if (ispan) before = result.metrics.cost;
    TopKCollector collector(config_.top_k);
    DocStats dstats;
    dstats.tf.resize(qstats.keywords.size());
    ConjunctionIterator it(std::move(cursors), &guard);
    if (ispan) {
      ispan.Attr("lists", static_cast<uint64_t>(it.num_lists()));
      ispan.Attr("strategy", it.StrategyMix());
      ispan.Attr("scoring", ranking_->name());
      ispan.Attr("top_k", static_cast<uint64_t>(config_.top_k));
    }
    for (; !it.AtEnd(); it.Next()) {
      if (!query.years.Contains(years_[it.doc()])) continue;
      result.result_count++;
      dstats.doc = it.doc();
      dstats.length = content_index_.doc_length(it.doc());
      for (size_t i = 0; i < qstats.keywords.size(); ++i) {
        dstats.tf[i] = it.tf(i);
      }
      collector.Offer(dstats.doc,
                      ranking_->Score(qstats, dstats, result.stats));
    }
    retrieval_aborted = it.aborted();
    result.top_docs = collector.Take();
    if (ispan) {
      ispan.Attr("docs_scored", result.result_count);
      ispan.Attr("aborted", retrieval_aborted);
      AttrIntersectionCostDelta(ispan.get(), result.metrics.cost, before);
    }
  }

  if (retrieval_aborted) {
    // Degradation rung 3: partial top-k over the documents seen so far.
    RecordTrip(guard);
    if (trace != nullptr) {
      trace->Event(retrieval_span.get(), "event:degraded")
          ->Attr("reason", guard.TripReason());
    }
    if (!config_.degrade_gracefully || result.result_count == 0) {
      // With degradation off, fail typed. With nothing salvaged, also fail
      // typed — an empty "success" would be indistinguishable from a real
      // empty result.
      if (record) RecordQueryMetrics(result.metrics, mode, true);
      return TripStatus(guard);
    }
    result.metrics.degraded = true;
    if (!result.metrics.degraded_reason.empty()) {
      result.metrics.degraded_reason += "; ";
    }
    result.metrics.degraded_reason +=
        "retrieval stopped early (" + guard.TripReason() +
        "); top-k ranks the " + std::to_string(result.result_count) +
        " documents matched before the stop";
  }
  if (result.metrics.degraded) degradation_.degraded_queries++;
  retrieval_span.End();

  result.metrics.retrieval_ms = retrieval_timer.ElapsedMillis();
  result.metrics.total_ms = total_timer.ElapsedMillis();
  result.metrics.plan += "; retrieval: " +
                         std::to_string(qstats.keywords.size() +
                                        query.context.size()) +
                         "-way conjunction, most selective first, top-" +
                         std::to_string(config_.top_k);
  if (retrieval_aborted) result.metrics.plan += " (partial)";
  if (record) RecordQueryMetrics(result.metrics, mode, /*failed=*/false);
  if (trace != nullptr) {
    trace->root()->Attr("degraded", result.metrics.degraded);
    trace->Finish();
    result.trace = std::move(trace);
  }
  return result;
}

}  // namespace csr
