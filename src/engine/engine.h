#ifndef CSR_ENGINE_ENGINE_H_
#define CSR_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/atm.h"
#include "corpus/generator.h"
#include "engine/query.h"
#include "engine/segments.h"
#include "engine/top_k.h"
#include "index/inverted_index.h"
#include "index/scan_guard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ranking/ranking_function.h"
#include "engine/stats_cache.h"
#include "selection/adaptive.h"
#include "selection/hybrid.h"
#include "stats/collector.h"
#include "util/result.h"
#include "util/retry.h"
#include "views/view_builder.h"
#include "views/view_catalog.h"

namespace csr {

class SegmentMerger;

/// Engine configuration. Thresholds follow Section 6.2: T_C defaults to 1%
/// of the collection and T_V to 4096 tuples.
struct EngineConfig {
  /// Ranked results returned per query.
  uint32_t top_k = 20;

  /// Ranking function name (see MakeRankingFunction).
  std::string ranking = "pivoted";

  /// Skip-pointer segment size M0.
  uint32_t segment_size = 128;

  /// Serve postings from the FOR/varint block-compressed representation.
  /// Build() compacts both indexes before any query runs; snapshots then
  /// persist the compressed bytes directly. Off reproduces the uncompressed
  /// serving path (the differential tests prove identical results).
  bool compressed_postings = true;

  /// How Compact() picks each block's representation. kAuto sizes varint,
  /// FOR, and bitmap per block and keeps the smallest; kBitmapPreferred
  /// biases dense blocks toward the bitmap container (fast word-wise AND)
  /// whenever it does not regress memory past the uncompressed baseline.
  /// The forced policies exist for ablation benches and differential
  /// tests.
  CodecPolicy codec_policy = CodecPolicy::kAuto;

  /// T_C as a fraction of |D|.
  double context_threshold_fraction = 0.01;

  /// T_V in view tuples.
  uint64_t view_size_threshold = 4096;

  /// Cap on tracked keywords (df-parameter columns per view). The paper's
  /// PubMed run tracks 910 keywords.
  uint32_t tracked_cap = 1024;

  /// Documents sampled by the view-size estimator.
  uint32_t estimator_sample = 20000;

  /// Store tc parameter columns too (needed by language-model ranking).
  bool track_tc = false;

  /// Year-bucket size for the views' time dimension (Section 7 extension);
  /// 0 disables it. With a bucket size of e.g. 10, year ranges aligned to
  /// decades are answerable from views; other ranges fall back to the
  /// straightforward plan.
  uint16_t view_year_bucket = 0;

  /// Capacity of the LRU collection-statistics cache (entries). 0 disables
  /// caching. Context-sensitive workloads revisit contexts heavily, so a
  /// small cache removes most statistics recomputation; benches keep it
  /// off to measure the uncached paths.
  size_t stats_cache_capacity = 0;

  /// Per-query wall-clock deadline in milliseconds; 0 disables it. A
  /// pathological context query can otherwise scan postings unboundedly;
  /// when the deadline expires mid-plan the query degrades (see
  /// `degrade_gracefully`) instead of running away.
  double deadline_ms = 0.0;

  /// Per-query posting-scan budget (conjunction advances); 0 disables it.
  /// The degraded plan gets one fresh budget, so a query scans at most
  /// twice this many postings end to end.
  uint64_t posting_scan_budget = 0;

  /// What exhaustion does. true (default): the plan degrades — context
  /// statistics fall back to global statistics, retrieval returns the
  /// partial top-k collected so far — and the result carries
  /// SearchMetrics::degraded with a reason. false: Search fails fast with
  /// a typed status (kDeadlineExceeded / kResourceExhausted / kDataLoss).
  bool degrade_gracefully = true;

  /// Master switch for the metrics-registry hot-path updates (counters and
  /// latency histograms recorded by every Search). On by default — the
  /// cost is a handful of relaxed atomic adds per query, gated by
  /// bench_obs_overhead to within 5% of the un-instrumented path. Off
  /// exists for that bench's A/B baseline; the registry itself (and the
  /// legacy-counter sample callbacks) stays queryable either way.
  bool metrics_enabled = true;

  /// Fraction of queries that record a full QueryTrace span tree into
  /// SearchResult::trace (0 disables tracing, 1 traces everything).
  /// Implemented as trace-every-Nth with N = round(1/rate), so sampling
  /// is deterministic and costs one relaxed counter increment per query.
  double trace_sample_rate = 0.0;

  /// Retry policy for transient materialized-view read faults (injection
  /// point kViewRead). Retries draw on the process-wide RetryBudget
  /// (util/retry.h), so a correlated fault storm drains one shared bucket
  /// and degrades into fallbacks instead of amplifying itself.
  RetryPolicy view_retry{/*max_attempts=*/2, /*base_ms=*/0.05,
                         /*cap_ms=*/1.0};

  /// Circuit breaker guarding the view read path: after failure_threshold
  /// consecutive unsalvageable view-read faults, Search stops consulting
  /// views and serves the straightforward plan (identical scores, higher
  /// cost) until a half-open probe succeeds.
  CircuitBreakerConfig view_breaker;

  // -- Live ingestion (LSM segments, DESIGN.md §14) ----------------------

  /// Documents the in-memory write segment accepts before it seals into an
  /// immutable (block-compressed, when compressed_postings) segment. 0
  /// means "never seal automatically" — everything appended stays in one
  /// growing buffer segment.
  uint32_t mem_segment_max_docs = 4096;

  /// Sealed segments beyond the base that arm the merge policy: MergeOnce
  /// (and the background merger) folds the adjacent sealed pair with the
  /// smallest combined size whenever at least this many sealed extras are
  /// live.
  uint32_t merge_trigger_segments = 4;

  /// Run the size-tiered merge policy on a background thread. Off by
  /// default: tests drive MergeOnce() deterministically; serving setups
  /// (shell, ingest bench) turn it on or call StartBackgroundMerge().
  bool background_merge = false;

  /// Poll interval of the background merger when no merge is pending.
  double merge_interval_ms = 2.0;

  // -- Online adaptive view selection (DESIGN.md §17) --------------------

  /// Hard byte budget for the adaptive view cache (actual MemoryBytes of
  /// resident adaptive views). 0 disables the whole subsystem: no
  /// controller is created and the query path never consults it.
  uint64_t adaptive_view_budget_bytes = 0;

  /// Benefit decay half-life in view-eligible observations (see
  /// AdaptiveSelectionConfig::half_life).
  double adaptive_half_life = 256.0;

  /// Minimum decayed score (accumulated straightforward milliseconds)
  /// before a context is worth materializing.
  double adaptive_min_score_ms = 2.0;

  /// Widest context admitted as an adaptive candidate.
  uint32_t adaptive_max_context_terms = 8;

  /// Steps a rejected or evicted candidate sits out (thrash guard).
  uint32_t adaptive_cooldown_steps = 8;

  /// Run the controller's decision loop on a background thread. Off by
  /// default: tests and benches drive AdaptiveStep() deterministically.
  bool adaptive_background = false;

  /// Poll interval of the adaptive background thread when idle.
  double adaptive_interval_ms = 5.0;
};

/// Cumulative fault-tolerance telemetry for one engine, surfaced through
/// ContextSearchEngine::degradation(). Counters only ever increase.
///
/// Memory-order contract: each counter is an independent monotonic event
/// count. Writers (concurrent Search calls) increment with relaxed
/// ordering; readers load with relaxed ordering (the atomics' implicit
/// conversion does this). No ordering is implied *between* counters — a
/// reader polling during a burst may, e.g., observe degraded_queries
/// already incremented while the deadline_hits that caused it still reads
/// the old value. Quiescent reads (no Search in flight) are exact.
struct DegradationStats {
  std::atomic<uint64_t> views_quarantined{0};  // dropped loading a snapshot
  std::atomic<uint64_t> quarantine_fallbacks{0};  // routed around a drop
  std::atomic<uint64_t> deadline_hits{0};  // ScanGuard deadline trips
  std::atomic<uint64_t> budget_hits{0};    // ScanGuard posting-budget trips
  std::atomic<uint64_t> fault_trips{0};    // injected posting faults seen
  std::atomic<uint64_t> degraded_queries{0};  // results with degraded=true
  std::atomic<uint64_t> view_read_faults{0};  // transient view-read faults
  std::atomic<uint64_t> segments_quarantined{0};  // dropped loading snapshot
};

/// The in-flight state of one phased Search. The staged pipeline executor
/// (engine/executor.h) carries one of these across its stages:
///
///   BeginSearch(q, mode, wait)   parse/plan — validation, trace + guard
///                                setup, LiveSet snapshot
///   SearchStats(ps)              phase 1 — collection statistics (cache,
///                                views, degradation rung 2)
///   SearchIntersect(ps)          phase 2 — k-way conjunction, match
///                                materialization (degradation rung 3)
///   FinishSearch(ps)             score/top-k — final chunk scoring,
///                                metrics, trace finish
///
/// Search() itself runs exactly this sequence inline, so pipelined and
/// sequential execution are bit-identical by construction (same scores,
/// tie-breaks, cost counters, and degradation reasons). A PreparedSearch
/// is owned by one stage at a time; queue handoffs provide the
/// happens-before edges, so no member needs synchronization.
struct PreparedSearch {
  PreparedSearch(const ContextQuery& q, EvaluationMode m, uint32_t top_k,
                 double deadline_ms, uint64_t budget, double elapsed_ms)
      : query(q),
        mode(m),
        guard(deadline_ms, budget, elapsed_ms),
        collector(top_k) {}
  PreparedSearch(const PreparedSearch&) = delete;
  PreparedSearch& operator=(const PreparedSearch&) = delete;

  ContextQuery query;
  EvaluationMode mode;
  ScanGuard guard;          // one guard spans all stages (wall clock runs
                            // across queue waits; see AddQueueWait)
  TopKCollector collector;
  WallTimer total_timer;    // started at BeginSearch; read at FinishSearch
  bool record = false;      // metrics_enabled() snapshot from BeginSearch
  std::shared_ptr<QueryTrace> trace;
  TraceContext root;
  QueryStats qstats;
  std::shared_ptr<const LiveSet> live;
  std::vector<SearchPart> parts;
  SearchResult result;

  /// Matches materialized by SearchIntersect. Scored in chunks as the
  /// intersection produces them (bounding memory for huge conjunctions)
  /// with the final chunk scored by FinishSearch; the Offer order equals
  /// the fused loop's, so top-k ties break identically.
  struct Match {
    DocId doc;        // global docid
    uint32_t length;  // len(d)
  };
  std::vector<Match> pending;
  std::vector<uint32_t> pending_tfs;  // pending.size() x unique keywords
  bool retrieval_aborted = false;
};

/// The system of the paper, end to end: inverted indexes over content and
/// predicates, conventional and context-sensitive query evaluation, and the
/// materialized-view pipeline (selection + building + query-time matching).
///
/// Typical use:
///
///   auto engine = ContextSearchEngine::Build(std::move(corpus), config);
///   engine->SelectAndMaterializeViews();
///   ContextQuery q{{w1, w2}, {m1, m2}};
///   auto result = engine->Search(q, EvaluationMode::kContextWithViews);
///
/// Threading model (see DESIGN.md §9 and §14): Search() and the const
/// accessors are safe to call from any number of threads concurrently —
/// the base indexes, corpus prefix, catalog, and ranking are immutable
/// during serving, the statistics cache is internally synchronized
/// (mutex-striped shards), and the degradation telemetry is atomic.
/// AppendDocuments() and MergeOnce() are *ingest* operations: safe to run
/// concurrently with any number of Searches (queries serve from an
/// immutable LiveSet snapshot; writers publish a new one by pointer swap)
/// but serialized against each other on an internal ingest mutex. The
/// remaining mutators — Build(), SelectAndMaterializeViews(),
/// MaterializeViews(), InstallCatalog(), FlattenSegments(),
/// InstallSealedSegment(), RebuildSegmentsFromCorpus() — still require
/// exclusive access: no Search or ingest may be in flight.
/// engine/executor.h provides a thread pool that serves Search under this
/// contract.
class ContextSearchEngine {
 public:
  ~ContextSearchEngine();  // stops the background merger before members die

  /// Indexes the corpus. Does not select or build views.
  static Result<std::unique_ptr<ContextSearchEngine>> Build(
      Corpus corpus, EngineConfig config);

  /// Builds an engine around already-constructed indexes (the snapshot load
  /// path: compressed postings are installed directly, no decode-reencode
  /// or rebuild). The indexes become the BASE segment and must cover a
  /// non-empty prefix of `corpus.docs`; any remaining corpus tail is
  /// installed afterwards via InstallSealedSegment /
  /// RebuildSegmentsFromCorpus (segmented snapshots) — a legacy snapshot's
  /// indexes cover the whole corpus and nothing else happens.
  static Result<std::unique_ptr<ContextSearchEngine>> BuildWithIndexes(
      Corpus corpus, EngineConfig config, InvertedIndex content_index,
      InvertedIndex predicate_index);

  /// Converts both inverted indexes and all materialized views to their
  /// compressed representations. Idempotent; called by Build() when
  /// EngineConfig::compressed_postings is set, and by the shell's
  /// `.index compact`. Requires exclusive access (no Search in flight).
  void CompactIndexes();

  /// Runs hybrid view selection (Section 5.3) and materializes the selected
  /// views. Idempotent: re-running replaces the catalog.
  Status SelectAndMaterializeViews();

  /// Materializes caller-provided view definitions (bypasses selection);
  /// used by tests and ablations.
  Status MaterializeViews(std::vector<ViewDefinition> defs);

  /// Appends documents to the collection (they receive the next docids)
  /// WHILE SERVING: only the in-memory write segment is rebuilt — the base
  /// indexes, catalog, and sealed segments are untouched, so concurrent
  /// Searches proceed against their LiveSet snapshot and observe the new
  /// documents atomically when the next snapshot publishes. When the write
  /// segment reaches EngineConfig::mem_segment_max_docs it seals into an
  /// immutable block-compressed segment. Materialized views are maintained
  /// synchronously as per-segment deltas (same integer aggregates, folded
  /// at query time), so the view plan never serves stale statistics. The
  /// tracked-keyword table and T_C are frozen at Build time: views are
  /// slot-aligned to them. Cached statistics are invalidated by epoch.
  Status AppendDocuments(std::vector<Document> docs);

  // -- LSM segment lifecycle (DESIGN.md §14) -----------------------------

  /// One step of the size-tiered merge policy: when at least
  /// EngineConfig::merge_trigger_segments sealed extras are live, folds
  /// the adjacent sealed pair with the smallest combined document count
  /// into one segment (posting-level index merge + view-delta merge, then
  /// block compaction) and publishes the new LiveSet. Returns true when a
  /// merge happened. Safe concurrently with Search; serialized against
  /// AppendDocuments.
  bool MergeOnce();

  /// Folds every extra segment — indexes, years, and view deltas — into
  /// the base, leaving one segment covering the whole collection. The
  /// compacted result is bit-identical to a scratch build over the same
  /// documents (block compaction is a pure function of the logical posting
  /// sequence; view aggregates are integer sums). Requires exclusive
  /// access. Idempotent.
  Status FlattenSegments();

  /// Installs a sealed segment decoded from a snapshot. Must cover exactly
  /// the next docid range ([live end, live end + num_docs) within the
  /// corpus); view deltas are rebuilt from the corpus slice against the
  /// current catalog. Requires exclusive access; call after
  /// InstallCatalog, in ascending base order.
  Status InstallSealedSegment(IndexSegment segment);

  /// (Re)builds segments over the corpus slice [first, corpus end): full
  /// mem_segment_max_docs chunks seal, the remainder becomes the write
  /// buffer. The snapshot load path uses this to recover quarantined or
  /// missing segment ranges from the corpus (which is ground truth), and
  /// to rebuild the unsealed tail that snapshots do not persist. `first`
  /// must equal the live end. Requires exclusive access.
  Status RebuildSegmentsFromCorpus(DocId first);

  /// Starts/stops the background merge thread (idempotent). Finish starts
  /// it automatically when EngineConfig::background_merge is set. The
  /// destructor stops it.
  void StartBackgroundMerge();
  void StopBackgroundMerge();

  /// Total live documents: base + every extra segment. This — not
  /// content_index().num_docs(), which covers only the base — is the
  /// collection size queries see.
  uint64_t total_docs() const;

  /// Documents covered by the base indexes and base catalog views.
  uint64_t base_docs() const { return base_docs_; }

  /// Per-segment shape rows (base first), for `.segments` and tests.
  std::vector<SegmentInfo> SegmentInfos() const;

  /// The current immutable LiveSet (never null). Snapshot persistence
  /// serializes sealed extras from it; tests inspect it.
  std::shared_ptr<const LiveSet> LiveSnapshot() const {
    return SnapshotLive();
  }

  /// Records a segment dropped at snapshot load (corrupt, truncated, or
  /// missing bytes); the loader rebuilds its range from the corpus.
  void RecordSegmentQuarantine() const {
    degradation_.segments_quarantined++;
  }

  /// Installs a catalog loaded from a snapshot (storage/snapshot.h),
  /// replacing the current one. `tracked_terms` must match this engine's
  /// tracked-keyword table — view parameter columns are slot-aligned to
  /// it — else FailedPrecondition.
  Status InstallCatalog(ViewCatalog catalog,
                        const std::vector<TermId>& tracked_terms);

  /// Evaluates Q_c (or the conventional Q_t, per `mode`). Returns
  /// InvalidArgument for queries with no keywords, or with an empty context
  /// in the context-sensitive modes. Safe for concurrent callers (see the
  /// class threading model).
  ///
  /// `elapsed_ms` is time already consumed on this query's behalf before
  /// execution started (the executor passes its queue wait); it counts
  /// against EngineConfig::deadline_ms. A query whose deadline fully
  /// elapsed before execution is shed with kDeadlineExceeded — even under
  /// degrade_gracefully, since any salvage work would violate the deadline
  /// it already missed.
  Result<SearchResult> Search(const ContextQuery& query, EvaluationMode mode,
                              double elapsed_ms = 0.0) const;

  // -- Phased Search (staged pipeline executor) --------------------------
  // Search() == BeginSearch -> SearchStats -> SearchIntersect ->
  // FinishSearch, run inline. The executor runs the same sequence with
  // queue handoffs between stages; results are bit-identical. Every
  // function records query metrics and returns the same typed statuses the
  // monolithic Search would, so a stage error is final — resolve the
  // query's promise with it and drop the PreparedSearch.

  /// Parse/plan stage: validation, early shed when the deadline was
  /// consumed in the queue, trace + guard setup, LiveSet snapshot.
  Result<std::unique_ptr<PreparedSearch>> BeginSearch(
      const ContextQuery& query, EvaluationMode mode,
      double elapsed_ms = 0.0) const;

  /// Phase 1: collection statistics (cache lookup, views, degradation
  /// rung 2 or its typed failure).
  Status SearchStats(PreparedSearch& ps) const;

  /// Phase 2: per-part conjunctions, match materialization with chunked
  /// scoring, degradation rung 3 or its typed failure. Runs under the
  /// calling thread's DecodedBlockArena when one is installed.
  Status SearchIntersect(PreparedSearch& ps) const;

  /// Score/top-k stage: scores the final match chunk, extracts the top-k,
  /// stamps metrics and finishes the trace.
  Result<SearchResult> FinishSearch(PreparedSearch& ps) const;

  /// Attributes `wait_ms` of inter-stage queue wait to the query: the
  /// guard's cumulative queue-wait accounting (surfaced by TripReason) and
  /// a `stage:<stage>` trace event carrying queue_wait_ms. The deadline
  /// clock needs no charge — it has been running since BeginSearch.
  void NoteStageWait(PreparedSearch& ps, std::string_view stage,
                     double wait_ms) const;

  // -- Accessors --------------------------------------------------------
  const Corpus& corpus() const { return corpus_; }
  const InvertedIndex& content_index() const { return content_index_; }
  const InvertedIndex& predicate_index() const { return predicate_index_; }
  const ViewCatalog& catalog() const { return catalog_; }
  const TrackedKeywords& tracked() const { return tracked_; }
  const AtmMapper& atm() const { return *atm_; }
  const EngineConfig& config() const { return config_; }
  const RankingFunction& ranking() const { return *ranking_; }

  /// T_C in absolute documents.
  uint64_t context_threshold() const { return context_threshold_; }

  /// ContextSize(P) = |∩ L_m|, computed from the predicate index.
  uint64_t ContextSize(std::span<const TermId> context) const;

  /// Publication year of document d (global docid; folds over segments).
  uint16_t doc_year(DocId d) const;

  /// Selection telemetry from the last SelectAndMaterializeViews call.
  const HybridResult& selection_result() const { return selection_; }

  /// The statistics cache (null when disabled).
  const StatsCache* stats_cache() const { return stats_cache_.get(); }

  /// Fault-tolerance telemetry: quarantined views, fallbacks, deadline and
  /// budget trips, degraded queries.
  const DegradationStats& degradation() const { return degradation_; }

  /// The circuit breaker guarding the materialized-view read path
  /// (state/telemetry for tests and the shell's `.qos`).
  const CircuitBreaker& view_breaker() const { return view_breaker_; }

  // -- Online adaptive view selection (DESIGN.md §17) --------------------

  /// The adaptive controller, or null when
  /// EngineConfig::adaptive_view_budget_bytes is 0.
  const AdaptiveViewController* adaptive() const { return adaptive_.get(); }

  /// One adaptive decision cycle (install / refresh / nothing). Tests and
  /// benches call this instead of running the background thread; returns
  /// false when the subsystem is disabled or the cycle found no work.
  bool AdaptiveStep() const;

  /// Starts/stops the adaptive background thread (idempotent; no-ops when
  /// the subsystem is disabled). Finish starts it automatically when
  /// EngineConfig::adaptive_background is set.
  void StartAdaptiveSelection();
  void StopAdaptiveSelection();

  /// Test hook: invoked by the adaptive materializer right after it pins
  /// its LiveSet snapshot and before it builds — a test can run MergeOnce
  /// there to prove builds racing a merge stay correct.
  void SetAdaptiveBuildInterceptForTest(std::function<void()> fn) {
    adaptive_build_intercept_ = std::move(fn);
  }

  // -- Observability ----------------------------------------------------

  /// The engine's metrics registry. Components owned by this engine
  /// (stats cache, degradation telemetry, per-query cost counters) are
  /// registered at Build time; external components serving through this
  /// engine (QueryExecutor) register themselves here. Thread-safe.
  MetricsRegistry& metrics_registry() const { return registry_; }

  /// Point-in-time snapshot of every registered instrument plus the
  /// sampled legacy counters, exported under stable dotted names
  /// (engine.*, executor.*, ...). See MetricsSnapshot::ToJson().
  csr::MetricsSnapshot MetricsSnapshot() const { return registry_.Snapshot(); }

  /// Runtime toggles mirroring the EngineConfig fields, so a bench (or the
  /// shell) can A/B instrumented vs un-instrumented serving on ONE engine
  /// without rebuilding indexes. Safe to flip while Search is in flight.
  bool metrics_enabled() const {
    return metrics_enabled_.load(std::memory_order_relaxed);
  }
  void set_metrics_enabled(bool on) {
    metrics_enabled_.store(on, std::memory_order_relaxed);
  }
  void set_trace_sample_rate(double rate);

 private:
  ContextSearchEngine() = default;

  /// Shared tail of Build/BuildWithIndexes: everything after the indexes
  /// exist (thresholds, tracked keywords, parameter table, ATM, cache), plus
  /// the compaction pass when configured.
  static Result<std::unique_ptr<ContextSearchEngine>> Finish(
      std::unique_ptr<ContextSearchEngine> engine);

  CollectionStats ComputeContextStats(const ContextQuery& query,
                                      const QueryStats& qstats,
                                      bool with_views,
                                      SearchMetrics& metrics,
                                      ScanGuard* guard,
                                      std::span<const SearchPart> parts,
                                      TraceContext tctx = {}) const;

  /// Conventional-ranking statistics folded over every part (integer sums
  /// of the per-part precomputed global statistics).
  CollectionStats FoldGlobalStats(std::span<const SearchPart> parts,
                                  std::span<const TermId> keywords) const;

  /// The current LiveSet (never null after Finish). One mutex-guarded
  /// shared_ptr copy; queries call it once and serve from the snapshot.
  std::shared_ptr<const LiveSet> SnapshotLive() const;

  /// Publishes a new LiveSet (stamps the next epoch). Caller holds
  /// ingest_mu_ or has exclusive access.
  void PublishLive(std::shared_ptr<LiveSet> next);

  /// The query-plan parts for one snapshot: base first, then every extra.
  std::vector<SearchPart> MakeParts(const LiveSet& live) const;

  /// Builds one segment over corpus docs [first, end) with local docids,
  /// including view deltas against the current catalog; seals (and block-
  /// compresses, when configured) iff `seal`. Caller holds ingest_mu_.
  Result<std::shared_ptr<EngineSegment>> BuildSegmentLocked(DocId first,
                                                            DocId end,
                                                            bool seal);

  /// Replaces every extra covering [tail_first, corpus end) with freshly
  /// built segments: full mem_segment_max_docs chunks seal, the remainder
  /// becomes the unsealed write buffer. Caller holds ingest_mu_; no extra
  /// may straddle tail_first.
  Status ResegmentTailLocked(DocId tail_first);

  /// Rebuilds a segment's view deltas from the corpus slice (used when a
  /// loaded segment carries indexes but deltas must align with the current
  /// catalog). Caller holds ingest_mu_.
  std::vector<MaterializedView> BuildViewDeltasLocked(
      const InvertedIndex& content, DocId first, DocId end) const;

  /// Folds a tripped guard into the degradation telemetry.
  void RecordTrip(const ScanGuard& guard) const;

  /// Scores every pending match into the collector (chunk drain of the
  /// phased retrieval; see PreparedSearch::pending).
  void ScorePending(PreparedSearch& ps) const;

  /// Registers the engine-owned instruments and legacy-counter sample
  /// callbacks into registry_ (called once, at the end of Finish).
  void RegisterMetrics();

  /// True when this query should record a full trace (every Nth query per
  /// trace_sample_rate). One relaxed fetch_add; never true when off.
  bool ShouldTrace() const;

  /// Folds one query's SearchMetrics into the registry counters. Gated on
  /// metrics_enabled(); all updates go through cached instrument pointers
  /// (relaxed atomics), never a registry lookup.
  void RecordQueryMetrics(const SearchMetrics& m, EvaluationMode mode,
                          bool failed) const;

  /// The adaptive controller's materialize hook: builds `def` against the
  /// CURRENT live snapshot — base via the index-side builder (never the
  /// growing corpus vector), one delta per extra segment — reusing
  /// `prior`'s base and still-live deltas when given. Runs on the
  /// controller's background thread concurrently with queries, appends,
  /// and merges.
  std::shared_ptr<const AdaptiveView> BuildAdaptiveView(
      const ViewDefinition& def,
      std::shared_ptr<const AdaptiveView> prior) const;

  /// Creates + starts the controller (Finish tail, after the estimator
  /// exists); no-op when the budget is 0.
  void InitAdaptive();

  Corpus corpus_;
  EngineConfig config_;
  uint64_t context_threshold_ = 0;
  InvertedIndex content_index_;    // the base segment
  InvertedIndex predicate_index_;  // the base segment
  TrackedKeywords tracked_;
  std::vector<uint16_t> years_;  // publication year, BASE documents only
  uint64_t base_docs_ = 0;       // documents covered by the base indexes
  std::unique_ptr<DocParamTable> param_table_;
  std::unique_ptr<ViewSizeEstimator> estimator_;
  std::unique_ptr<AtmMapper> atm_;
  std::unique_ptr<RankingFunction> ranking_;
  ViewCatalog catalog_;
  HybridResult selection_;
  // Mutable: Search() is logically const; the cache is an optimization.
  // The pointer itself is fixed after Build(); the pointee is internally
  // synchronized (mutex-striped shards), so concurrent Searches may share
  // it freely.
  mutable std::unique_ptr<StatsCache> stats_cache_;
  // Mutable for the same reason: telemetry about const queries. All
  // members are relaxed atomics (see DegradationStats).
  mutable DegradationStats degradation_;
  // View-path circuit breaker (DESIGN.md §13). Internally synchronized
  // (its own leaf mutex); mutable because breaker transitions are driven
  // by const Search calls.
  mutable CircuitBreaker view_breaker_;

  // Observability. The registry is internally synchronized; the hot-path
  // instrument pointers below are resolved once in RegisterMetrics and
  // immutable afterwards (updates through them are relaxed atomics).
  mutable MetricsRegistry registry_;
  struct HotMetrics {
    Counter* queries = nullptr;
    Counter* queries_failed = nullptr;
    Counter* queries_degraded = nullptr;
    Counter* traces_sampled = nullptr;
    Counter* plan_view_hits = nullptr;
    Counter* plan_straightforward = nullptr;
    Counter* plan_conventional = nullptr;
    Counter* plan_cache_hits = nullptr;
    Counter* plan_view_fallbacks = nullptr;
    Counter* plan_adaptive_hits = nullptr;  // stats served by the adaptive cache
    Counter* cost_entries_scanned = nullptr;
    Counter* cost_segments_touched = nullptr;
    Counter* cost_skips_taken = nullptr;
    Counter* cost_aggregation_entries = nullptr;
    Counter* cost_view_tuples_scanned = nullptr;
    Counter* cost_blocks_skipped = nullptr;
    Counter* cost_bytes_touched = nullptr;
    Histogram* total_ms = nullptr;
    Histogram* stats_ms = nullptr;
    Histogram* retrieval_ms = nullptr;
    // Live-ingestion instruments (ingest.*, segments.*, view.delta.*).
    Counter* ingest_docs = nullptr;
    Counter* ingest_batches = nullptr;
    Counter* ingest_seals = nullptr;
    Counter* segment_merges = nullptr;
    Counter* segment_merged_docs = nullptr;
    Counter* view_delta_folds = nullptr;   // query-time delta folds
    Counter* view_delta_merges = nullptr;  // physical merges at compaction
  };
  HotMetrics hot_;
  std::atomic<bool> metrics_enabled_{true};
  // Trace-every-Nth period derived from trace_sample_rate (0 = off), and
  // the query sequence counter driving it.
  std::atomic<uint32_t> trace_period_{0};
  mutable std::atomic<uint64_t> trace_sequence_{0};

  // -- Live ingestion state (DESIGN.md §14) ------------------------------
  // live_mu_ is a leaf mutex guarding only the live_ pointer swap: readers
  // (Search, telemetry) copy the shared_ptr under it and serve from the
  // immutable snapshot; writers build the next LiveSet outside the lock
  // and swap it in. ingest_mu_ serializes the writers themselves (append,
  // seal, merge publish) and protects corpus_.docs growth + the segment id
  // counter; queries never take it.
  mutable std::mutex live_mu_;
  std::shared_ptr<const LiveSet> live_;
  std::mutex ingest_mu_;
  uint64_t next_segment_id_ = 1;  // 0 is the base; guarded by ingest_mu_
  std::atomic<uint64_t> next_epoch_{2};

  // -- Online adaptive view selection (DESIGN.md §17) --------------------
  // The controller is internally synchronized; mutable because the query
  // path (const Search) records hits/misses into its estimator. Null when
  // adaptive_view_budget_bytes is 0. Exclusive mutators (flatten, catalog
  // install, compaction) stop + reset it — see AdaptiveExclusiveGuard in
  // engine.cc.
  mutable std::unique_ptr<AdaptiveViewController> adaptive_;
  std::function<void()> adaptive_build_intercept_;  // test-only, see setter

  // Declared last so it is destroyed first: the merger thread must stop
  // before any engine state it reads goes away. (The engine destructor
  // stops the adaptive thread explicitly before members die.)
  std::unique_ptr<SegmentMerger> merger_;
};

}  // namespace csr

#endif  // CSR_ENGINE_ENGINE_H_
