#ifndef CSR_UTIL_FAULT_H_
#define CSR_UTIL_FAULT_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace csr {

/// Named fault-injection points. Each site in the library that can fail for
/// environmental reasons (media errors, corrupt bytes) consults its point
/// via FaultHit() so tests can force the failure deterministically.
enum class FaultPoint : uint32_t {
  kStorageRead = 0,   // BinaryReader::OpenFile (snapshot file read)
  kStorageWrite,      // BinaryWriter::WriteFile (snapshot file write)
  kViewDecode,        // LoadViews per-view frame decode
  kPostingAdvance,    // ScanGuard tick inside posting-list conjunctions
  kViewRead,          // query-time materialized-view stats read
};
inline constexpr size_t kNumFaultPoints = 5;

std::string_view FaultPointName(FaultPoint p);

/// Deterministic fault-injection registry (process-wide singleton). Three
/// trigger mechanisms per point, independently armable:
///
///  - One-shot: Arm() makes the point fail on the Nth hit after arming,
///    exactly once, then the point disarms itself, so a test observes
///    precisely one injected fault per Arm().
///  - Probabilistic: ArmRate() makes each hit fail with probability
///    `rate`, drawn from a counter-indexed SplitMix64 stream, so a storm
///    scenario is reproducible: under a fixed seed the Kth hit of the
///    point fires or not deterministically, regardless of which thread
///    lands on it. The trigger stays armed until Disarm().
///  - Delay: ArmDelay() makes every hit sleep for a fixed duration before
///    returning (without injecting a failure), so tests can make one
///    pipeline stage arbitrarily slow — e.g. a slow-intersect scenario via
///    kPostingAdvance — and observe backpressure instead of errors.
///
/// Single-fire semantics under concurrency: Hit() may be called from any
/// number of threads (every query's ScanGuard ticks through it). The Nth
/// hit is claimed with a compare-exchange on the trigger, so exactly one
/// thread fires per Arm() no matter how many race past the counter — the
/// loser threads observe an ordinary non-fault hit. For rate triggers,
/// each hit claims a unique draw index with fetch_add, so across any
/// interleaving the same multiset of draw outcomes is consumed — the trip
/// count over N hits is seed-deterministic. Arm()/ArmRate()/Disarm() are
/// test-thread operations: arm before starting concurrent work (arming
/// while hits are in flight counts hits from both armings against the new
/// trigger). hits() may overcount by in-flight callers that loaded the
/// trigger just before it self-disarmed; trips() is exact.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `p` to fail on the `nth` hit (1-based) from now.
  void Arm(FaultPoint p, uint64_t nth = 1);

  /// Arms `p` to fail each hit independently with probability `rate`
  /// (clamped to [0, 1]; 0 disarms the rate trigger). Decisions come from
  /// a SplitMix64 stream derived from `seed`, indexed by hit order, so a
  /// fixed (rate, seed) yields an identical trip pattern on every run.
  /// Rearming resets the draw index. Coexists with a one-shot Arm(): the
  /// one-shot is consulted first and keeps its exactly-once contract.
  void ArmRate(FaultPoint p, double rate, uint64_t seed = 0x57042);

  /// Arms `p` to sleep `micros` microseconds on every hit (0 disarms the
  /// delay trigger). Delays never inject a failure — Hit() still returns
  /// false unless a one-shot or rate trigger fires on the same hit.
  void ArmDelay(FaultPoint p, uint64_t micros);

  /// Clears the one-shot, rate, and delay triggers for `p`.
  void Disarm(FaultPoint p);
  void DisarmAll();

  /// Called at injection sites. Returns true exactly on the armed Nth hit
  /// (one-shot) or on rate-selected hits (probabilistic).
  bool Hit(FaultPoint p);

  bool armed(FaultPoint p) const;
  /// The armed probabilistic rate (0 when no rate trigger is armed).
  double rate(FaultPoint p) const;
  uint64_t hits(FaultPoint p) const;
  /// Number of times this point has actually fired since process start.
  uint64_t trips(FaultPoint p) const;

 private:
  FaultInjector() = default;

  struct Slot {
    std::atomic<uint64_t> fail_at{0};  // 0 = disarmed
    // Probabilistic trigger: fire when draw < rate_threshold (threshold =
    // rate scaled to 2^64; 0 = disarmed). rate_seq hands each hit a unique
    // draw index; rate_seed selects the stream.
    std::atomic<uint64_t> rate_threshold{0};
    std::atomic<uint64_t> rate_seed{0};
    std::atomic<uint64_t> rate_seq{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> trips{0};
    // Delay trigger: every hit sleeps this long (0 = disarmed).
    std::atomic<uint64_t> delay_micros{0};
  };
  std::array<Slot, kNumFaultPoints> slots_;
  std::atomic<int> armed_count_{0};
};

/// Injection-site helper: one relaxed load when nothing is armed.
bool FaultHit(FaultPoint p);

/// RAII arming for tests: disarms (if still pending) on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint p, uint64_t nth = 1) : p_(p) {
    FaultInjector::Instance().Arm(p_, nth);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(p_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultPoint p_;
};

/// RAII delay arming for slow-stage scenarios: disarms on scope exit.
class ScopedFaultDelay {
 public:
  ScopedFaultDelay(FaultPoint p, uint64_t micros) : p_(p) {
    FaultInjector::Instance().ArmDelay(p_, micros);
  }
  ~ScopedFaultDelay() { FaultInjector::Instance().Disarm(p_); }
  ScopedFaultDelay(const ScopedFaultDelay&) = delete;
  ScopedFaultDelay& operator=(const ScopedFaultDelay&) = delete;

 private:
  FaultPoint p_;
};

/// RAII probabilistic arming for storm scenarios: disarms on scope exit.
class ScopedFaultRate {
 public:
  ScopedFaultRate(FaultPoint p, double rate, uint64_t seed = 0x57042)
      : p_(p) {
    FaultInjector::Instance().ArmRate(p_, rate, seed);
  }
  ~ScopedFaultRate() { FaultInjector::Instance().Disarm(p_); }
  ScopedFaultRate(const ScopedFaultRate&) = delete;
  ScopedFaultRate& operator=(const ScopedFaultRate&) = delete;

 private:
  FaultPoint p_;
};

}  // namespace csr

#endif  // CSR_UTIL_FAULT_H_
