#ifndef CSR_UTIL_FAULT_H_
#define CSR_UTIL_FAULT_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace csr {

/// Named fault-injection points. Each site in the library that can fail for
/// environmental reasons (media errors, corrupt bytes) consults its point
/// via FaultHit() so tests can force the failure deterministically.
enum class FaultPoint : uint32_t {
  kStorageRead = 0,   // BinaryReader::OpenFile (snapshot file read)
  kStorageWrite,      // BinaryWriter::WriteFile (snapshot file write)
  kViewDecode,        // LoadViews per-view frame decode
  kPostingAdvance,    // ScanGuard tick inside posting-list conjunctions
};
inline constexpr size_t kNumFaultPoints = 4;

std::string_view FaultPointName(FaultPoint p);

/// Deterministic fault-injection registry (process-wide singleton). Tests
/// Arm() a point to fail on the Nth hit after arming; the armed failure is
/// one-shot — it fires exactly once, then the point disarms itself, so a
/// test observes precisely one injected fault per Arm().
///
/// Single-fire semantics under concurrency: Hit() may be called from any
/// number of threads (every query's ScanGuard ticks through it). The Nth
/// hit is claimed with a compare-exchange on the trigger, so exactly one
/// thread fires per Arm() no matter how many race past the counter — the
/// loser threads observe an ordinary non-fault hit. Arm()/Disarm() are
/// test-thread operations: arm before starting concurrent work (arming
/// while hits are in flight counts hits from both armings against the new
/// trigger). hits() may overcount by in-flight callers that loaded the
/// trigger just before it self-disarmed; trips() is exact.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `p` to fail on the `nth` hit (1-based) from now.
  void Arm(FaultPoint p, uint64_t nth = 1);
  void Disarm(FaultPoint p);
  void DisarmAll();

  /// Called at injection sites. Returns true exactly on the armed Nth hit.
  bool Hit(FaultPoint p);

  bool armed(FaultPoint p) const;
  uint64_t hits(FaultPoint p) const;
  /// Number of times this point has actually fired since process start.
  uint64_t trips(FaultPoint p) const;

 private:
  FaultInjector() = default;

  struct Slot {
    std::atomic<uint64_t> fail_at{0};  // 0 = disarmed
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> trips{0};
  };
  std::array<Slot, kNumFaultPoints> slots_;
  std::atomic<int> armed_count_{0};
};

/// Injection-site helper: one relaxed load when nothing is armed.
bool FaultHit(FaultPoint p);

/// RAII arming for tests: disarms (if still pending) on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint p, uint64_t nth = 1) : p_(p) {
    FaultInjector::Instance().Arm(p_, nth);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(p_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultPoint p_;
};

}  // namespace csr

#endif  // CSR_UTIL_FAULT_H_
