#ifndef CSR_UTIL_STATUS_H_
#define CSR_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace csr {

/// Error categories used across the library. The set is deliberately small:
/// callers usually branch only on ok() vs. !ok() and surface the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
  kDataLoss,
  kUnavailable,
};

/// A lightweight status object in the RocksDB/Arrow style. The library does
/// not throw exceptions; every operation that can fail returns a Status (or
/// a Result<T>, see result.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  /// A per-query deadline or time budget expired before the operation
  /// finished (the operation may have partially completed).
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  /// Unrecoverable corruption or loss of persisted data (bad checksum,
  /// truncated snapshot, failed media read).
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, msg);
  }
  /// The operation cannot be served right now but may succeed if retried:
  /// a transient media fault, or a component that has shut down / not yet
  /// come up. Distinct from kResourceExhausted (the caller should back
  /// off) and kDataLoss (retrying cannot help).
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  /// A kResourceExhausted rejection carrying a backoff hint: the caller
  /// should wait ~`retry_after_ms` before resubmitting. The hint rides on
  /// the status so admission control can size it from queue state; it is
  /// advisory, never a guarantee of admission.
  static Status ResourceExhaustedWithRetry(std::string_view msg,
                                           double retry_after_ms) {
    Status s(StatusCode::kResourceExhausted, msg);
    s.retry_after_ms_ = retry_after_ms;
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Backoff hint in milliseconds; 0 means "none attached". Only
  /// ResourceExhaustedWithRetry sets it.
  double retry_after_ms() const { return retry_after_ms_; }

  /// Human-readable rendering, e.g. "InvalidArgument: empty query".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
  double retry_after_ms_ = 0.0;  // advisory; excluded from operator==
};

/// Returns the canonical name of a status code ("Ok", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Propagates a non-OK status to the caller. Mirrors the common
/// RETURN_NOT_OK macro in database codebases.
#define CSR_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::csr::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace csr

#endif  // CSR_UTIL_STATUS_H_
