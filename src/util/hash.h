#ifndef CSR_UTIL_HASH_H_
#define CSR_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace csr {

/// 64-bit mix used to combine hash values (based on the finalizer of
/// MurmurHash3 / SplitMix64).
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return HashMix64(seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                           (seed >> 2)));
}

/// Order-sensitive hash of a term-id sequence. Used to key itemsets and
/// view signatures; the inputs are always kept sorted, so order sensitivity
/// is fine (and cheaper than an order-free hash).
inline uint64_t HashTermIds(const TermIdSet& ids) {
  uint64_t h = 0x8445D61A4E774912ULL;
  for (TermId t : ids) h = HashCombine(h, t);
  return h;
}

/// std::unordered_map-compatible hasher for sorted TermIdSet keys.
struct TermIdSetHash {
  size_t operator()(const TermIdSet& ids) const {
    return static_cast<size_t>(HashTermIds(ids));
  }
};

}  // namespace csr

#endif  // CSR_UTIL_HASH_H_
