#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace csr {

std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

void AsciiLower(std::string& s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string FormatMillis(double ms) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace csr
