#ifndef CSR_UTIL_RETRY_H_
#define CSR_UTIL_RETRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "util/random.h"
#include "util/timer.h"

namespace csr {

/// Retry/backoff primitives for transient serving faults (DESIGN.md §13).
/// Three pieces, composable:
///
///  - RetryPolicy + DecorrelatedJitterBackoff: how often and how long to
///    wait between attempts.
///  - RetryBudget: a global token bucket that caps the *fleet-wide* retry
///    rate, so a correlated fault storm cannot amplify itself — when the
///    budget drains, operations fail fast instead of multiplying load.
///  - CircuitBreaker: per-dependency failure tracking that short-circuits
///    a persistently failing path to its fallback, probing it periodically
///    to detect recovery.

/// How a single protected operation retries.
struct RetryPolicy {
  /// Total tries including the first attempt. 1 disables retries.
  uint32_t max_attempts = 3;
  /// Decorrelated-jitter base sleep (also the minimum sleep).
  double base_ms = 0.2;
  /// Per-sleep cap.
  double cap_ms = 5.0;
};

/// Decorrelated jitter ("sleep = min(cap, uniform(base, 3 * prev))"): each
/// delay is drawn from a range anchored to the previous delay, spreading
/// correlated retriers apart far better than exponential backoff with
/// equal steps. Deterministic under a fixed seed.
class DecorrelatedJitterBackoff {
 public:
  DecorrelatedJitterBackoff(RetryPolicy policy, uint64_t seed)
      : policy_(policy), rng_(seed), prev_ms_(policy.base_ms) {}

  double NextDelayMs() {
    double hi = prev_ms_ * 3.0;
    if (hi < policy_.base_ms) hi = policy_.base_ms;
    double d = policy_.base_ms +
               rng_.NextDouble() * (hi - policy_.base_ms);
    if (d > policy_.cap_ms) d = policy_.cap_ms;
    prev_ms_ = d;
    return d;
  }

 private:
  RetryPolicy policy_;
  SplitMix64 rng_;
  double prev_ms_;
};

/// Global retry token bucket. Every successful protected operation
/// deposits a fraction of a token; every retry withdraws a whole one, so
/// sustained retries are bounded to `deposit_per_success` of the success
/// rate plus the burst capacity. When a storm drains the bucket, further
/// retries are denied and callers surface the transient failure instead
/// of hammering the faulty dependency.
///
/// Thread-safe; tokens are a CAS-updated atomic double, counters are
/// relaxed atomics (same memory-order contract as DegradationStats).
class RetryBudget {
 public:
  explicit RetryBudget(double capacity = 32.0,
                       double deposit_per_success = 0.1)
      : capacity_(capacity),
        deposit_per_success_(deposit_per_success),
        tokens_(capacity) {}

  /// Takes one token for a retry. False (and a denial count) when the
  /// bucket is empty — the caller must not retry.
  bool TryWithdraw();

  /// Credits a successful protected operation.
  void Deposit();

  double tokens() const { return tokens_.load(std::memory_order_relaxed); }
  double capacity() const { return capacity_; }
  uint64_t withdrawals() const {
    return withdrawals_.load(std::memory_order_relaxed);
  }
  uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);
  }
  uint64_t deposits() const {
    return deposits_.load(std::memory_order_relaxed);
  }

  /// Refills the bucket and zeroes the counters (tests).
  void Reset();

  /// The process-wide budget shared by every retried site (storage reads,
  /// view-read salvage). One bucket on purpose: a storm that hits many
  /// sites at once must share one cap, or each site amplifies separately.
  static RetryBudget& Global();

 private:
  double capacity_;
  double deposit_per_success_;
  std::atomic<double> tokens_;
  std::atomic<uint64_t> withdrawals_{0};
  std::atomic<uint64_t> denials_{0};
  std::atomic<uint64_t> deposits_{0};
};

/// Sleeps for a (fractional) millisecond delay; retry sleeps are small, so
/// this is a plain this_thread::sleep_for.
void SleepForMillis(double ms);

struct CircuitBreakerConfig {
  /// Consecutive failures that trip a closed breaker open.
  uint32_t failure_threshold = 5;
  /// How long an open breaker rejects before letting probes through.
  double open_ms = 250.0;
  /// Probe successes required in half-open before the breaker closes.
  /// A probe failure reopens immediately.
  uint32_t half_open_probes = 2;
};

/// Classic three-state circuit breaker guarding one dependency (here: the
/// materialized-view read path).
///
///   closed --(N consecutive failures)--> open
///   open   --(open_ms elapsed)--------> half-open (admits probe calls)
///   half-open --(probe successes)-----> closed
///   half-open --(probe failure)-------> open
///
/// Allow() is the admission check: false means "short-circuit to the
/// fallback without touching the dependency". Callers that get true MUST
/// report the outcome with OnSuccess()/OnFailure(), or a half-open
/// breaker would leak its probe slots and stick.
///
/// Internally a small mutex: breaker decisions sit on control-flow edges
/// (one check per view-path query), not in the posting-scan hot loop.
class CircuitBreaker {
 public:
  enum class State : uint32_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  /// Re-arms thresholds (engine build time, before concurrent use).
  void Configure(CircuitBreakerConfig config) { config_ = config; }

  /// True: proceed against the dependency (and report the outcome).
  /// False: the breaker is open — use the fallback path.
  bool Allow();
  void OnSuccess();
  void OnFailure();

  State state() const;
  std::string_view StateName() const;

  // Cumulative telemetry (monotonic; exported as breaker.* metrics).
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  uint64_t short_circuits() const {
    return short_circuits_.load(std::memory_order_relaxed);
  }
  uint64_t probes() const {
    return probes_.load(std::memory_order_relaxed);
  }

 private:
  void TripLocked();  // requires mu_

  CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;  // closed
  uint32_t probes_started_ = 0;        // half-open
  uint32_t probe_successes_ = 0;       // half-open
  WallTimer opened_;                   // restarted on every trip
  std::atomic<uint64_t> trips_{0};
  std::atomic<uint64_t> recoveries_{0};
  std::atomic<uint64_t> short_circuits_{0};
  std::atomic<uint64_t> probes_{0};
};

std::string_view CircuitBreakerStateName(CircuitBreaker::State s);

}  // namespace csr

#endif  // CSR_UTIL_RETRY_H_
