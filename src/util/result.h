#ifndef CSR_UTIL_RESULT_H_
#define CSR_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace csr {

/// Result<T> holds either a value of type T or a non-OK Status. It is the
/// return type of factory functions and other fallible producers, so that
/// object constructors never need to signal errors.
///
/// Typical use:
///
///   Result<InvertedIndex> r = IndexBuilder::Build(corpus);
///   if (!r.ok()) return r.status();
///   InvertedIndex index = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status; OK() when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors require ok(). Checked with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback when the result is an error.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns the error
/// status to the caller.
#define CSR_ASSIGN_OR_RETURN(lhs, expr)                     \
  auto CSR_CONCAT_(_res_, __LINE__) = (expr);               \
  if (!CSR_CONCAT_(_res_, __LINE__).ok())                   \
    return CSR_CONCAT_(_res_, __LINE__).status();           \
  lhs = std::move(CSR_CONCAT_(_res_, __LINE__)).value()

#define CSR_CONCAT_(a, b) CSR_CONCAT_IMPL_(a, b)
#define CSR_CONCAT_IMPL_(a, b) a##b

}  // namespace csr

#endif  // CSR_UTIL_RESULT_H_
