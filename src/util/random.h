#ifndef CSR_UTIL_RANDOM_H_
#define CSR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csr {

/// SplitMix64: fast, high-quality 64-bit generator used to seed and to draw
/// deterministic pseudo-random streams. All randomness in the library flows
/// through explicitly seeded instances so that corpora, query workloads and
/// experiments are reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// Zipf-distributed sampler over ranks 0..n-1 with exponent s (s=1 is the
/// classic Zipf law). Uses the inverse-CDF method over a precomputed
/// cumulative table, so sampling is O(log n).
///
/// Term-frequency distributions in text are famously Zipfian; the synthetic
/// corpus generator uses this sampler for both background and per-context
/// topical vocabularies.
class ZipfDistribution {
 public:
  /// Builds the cumulative table. n must be >= 1; s must be > 0.
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(SplitMix64& rng) const;

  size_t n() const { return cdf_.size(); }

  /// Probability mass of the given rank.
  double pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
  double s_;
  double norm_;
};

/// Fisher-Yates shuffle of a vector with the library RNG.
template <typename T>
void Shuffle(std::vector<T>& v, SplitMix64& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(v[i - 1], v[j]);
  }
}

/// Reservoir-samples k items from [0, n) without replacement. Returns a
/// sorted vector of indices. k may exceed n, in which case all indices are
/// returned.
std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k,
                                             SplitMix64& rng);

}  // namespace csr

#endif  // CSR_UTIL_RANDOM_H_
