#include "util/retry.h"

#include <chrono>
#include <thread>

namespace csr {

bool RetryBudget::TryWithdraw() {
  double cur = tokens_.load(std::memory_order_relaxed);
  while (true) {
    if (cur < 1.0) {
      denials_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (tokens_.compare_exchange_weak(cur, cur - 1.0,
                                      std::memory_order_relaxed)) {
      withdrawals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

void RetryBudget::Deposit() {
  deposits_.fetch_add(1, std::memory_order_relaxed);
  double cur = tokens_.load(std::memory_order_relaxed);
  while (true) {
    double next = cur + deposit_per_success_;
    if (next > capacity_) next = capacity_;
    if (next == cur) return;
    if (tokens_.compare_exchange_weak(cur, next,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

void RetryBudget::Reset() {
  tokens_.store(capacity_, std::memory_order_relaxed);
  withdrawals_.store(0, std::memory_order_relaxed);
  denials_.store(0, std::memory_order_relaxed);
  deposits_.store(0, std::memory_order_relaxed);
}

RetryBudget& RetryBudget::Global() {
  static RetryBudget budget;
  return budget;
}

void SleepForMillis(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (opened_.ElapsedMillis() < config_.open_ms) {
        short_circuits_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      // Cooldown elapsed: start probing. Only `half_open_probes` callers
      // may touch the dependency at once; the rest keep short-circuiting
      // until the probes report back.
      state_ = State::kHalfOpen;
      probes_started_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_started_ >= config_.half_open_probes) {
        short_circuits_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      ++probes_started_;
      probes_.fetch_add(1, std::memory_order_relaxed);
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      return;
    case State::kOpen:
      // A straggler that passed Allow() before the trip; ignore.
      return;
    case State::kHalfOpen:
      if (++probe_successes_ >= config_.half_open_probes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        recoveries_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
  }
}

void CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripLocked();
      }
      return;
    case State::kOpen:
      return;  // straggler
    case State::kHalfOpen:
      TripLocked();  // the dependency is still sick; back to open
      return;
  }
}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  consecutive_failures_ = 0;
  probes_started_ = 0;
  probe_successes_ = 0;
  opened_.Restart();
  trips_.fetch_add(1, std::memory_order_relaxed);
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::string_view CircuitBreaker::StateName() const {
  return CircuitBreakerStateName(state());
}

std::string_view CircuitBreakerStateName(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace csr
