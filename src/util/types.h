#ifndef CSR_UTIL_TYPES_H_
#define CSR_UTIL_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace csr {

/// Dense document identifier. Documents are numbered 0..N-1 in corpus order;
/// posting lists are sorted by DocId.
using DocId = uint32_t;

/// Dense term identifier assigned by the Vocabulary on first sight. Both
/// content keywords and context predicates (ontology terms) are TermIds;
/// they live in separate vocabularies.
using TermId = uint32_t;

inline constexpr DocId kInvalidDocId = std::numeric_limits<DocId>::max();
inline constexpr TermId kInvalidTermId = std::numeric_limits<TermId>::max();

/// A sorted set of term ids; used for context specifications, view keyword
/// columns, and mined itemsets.
using TermIdSet = std::vector<TermId>;

/// An inclusive year range extending a context specification along the
/// time dimension (the Section 7 extension: "documents published after
/// 1998"). A default-constructed range is inactive (no restriction).
struct YearRange {
  uint16_t min_year = 0;
  uint16_t max_year = 0;

  bool active() const { return max_year != 0; }
  bool Contains(uint16_t y) const {
    return !active() || (y >= min_year && y <= max_year);
  }
  bool operator==(const YearRange&) const = default;
};

}  // namespace csr

#endif  // CSR_UTIL_TYPES_H_
