#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace csr {

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s_);
    cdf_[i] = acc;
  }
  norm_ = acc;
  for (size_t i = 0; i < n; ++i) cdf_[i] /= norm_;
}

size_t ZipfDistribution::Sample(SplitMix64& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(size_t rank) const {
  assert(rank < cdf_.size());
  return (1.0 / std::pow(static_cast<double>(rank + 1), s_)) / norm_;
}

std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k,
                                             SplitMix64& rng) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: k draws, no rejection loops beyond hash lookups.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = rng.NextBounded(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace csr
