#ifndef CSR_UTIL_TIMER_H_
#define CSR_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace csr {

/// Monotonic wall-clock timer used by benches and query-time metrics.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace csr

#endif  // CSR_UTIL_TIMER_H_
