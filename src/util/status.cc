#include "util/status.h"

namespace csr {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace csr
