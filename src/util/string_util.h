#ifndef CSR_UTIL_STRING_UTIL_H_
#define CSR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace csr {

/// Splits `s` on any character in `delims`, discarding empty pieces.
std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims);

/// Joins the pieces with the separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lowercase in place.
void AsciiLower(std::string& s);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatCount(uint64_t n);

/// Formats bytes human-readably, e.g. "3.71 MB".
std::string FormatBytes(uint64_t bytes);

/// Formats a millisecond quantity with one decimal place, e.g. "200.0".
/// User-facing degradation reasons and error messages use this instead of
/// std::to_string, which pads doubles to six decimals ("200.000000").
std::string FormatMillis(double ms);

}  // namespace csr

#endif  // CSR_UTIL_STRING_UTIL_H_
