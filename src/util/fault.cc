#include "util/fault.h"

namespace csr {

std::string_view FaultPointName(FaultPoint p) {
  switch (p) {
    case FaultPoint::kStorageRead:
      return "storage-read";
    case FaultPoint::kStorageWrite:
      return "storage-write";
    case FaultPoint::kViewDecode:
      return "view-decode";
    case FaultPoint::kPostingAdvance:
      return "posting-advance";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(FaultPoint p, uint64_t nth) {
  Slot& s = slots_[static_cast<size_t>(p)];
  if (nth == 0) nth = 1;
  s.hits.store(0, std::memory_order_relaxed);
  uint64_t prev = s.fail_at.exchange(nth, std::memory_order_relaxed);
  if (prev == 0) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(FaultPoint p) {
  Slot& s = slots_[static_cast<size_t>(p)];
  uint64_t prev = s.fail_at.exchange(0, std::memory_order_relaxed);
  if (prev != 0) armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    Disarm(static_cast<FaultPoint>(i));
  }
}

bool FaultInjector::Hit(FaultPoint p) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return false;
  Slot& s = slots_[static_cast<size_t>(p)];
  uint64_t fail_at = s.fail_at.load(std::memory_order_acquire);
  if (fail_at == 0) return false;
  uint64_t h = s.hits.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (h != fail_at) return false;
  // One-shot: claim the trigger with a CAS so exactly one thread fires per
  // Arm(). The previous Disarm()-based path raced concurrent callers — a
  // re-Arm() between the counter check and the disarm could be wiped out
  // and armed_count_ double-decremented. If the CAS loses (another thread
  // fired, or a Disarm/Arm replaced the trigger), this hit is an ordinary
  // non-fault hit.
  if (!s.fail_at.compare_exchange_strong(fail_at, 0,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    return false;
  }
  armed_count_.fetch_sub(1, std::memory_order_release);
  s.trips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::armed(FaultPoint p) const {
  return slots_[static_cast<size_t>(p)].fail_at.load(
             std::memory_order_relaxed) != 0;
}

uint64_t FaultInjector::hits(FaultPoint p) const {
  return slots_[static_cast<size_t>(p)].hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::trips(FaultPoint p) const {
  return slots_[static_cast<size_t>(p)].trips.load(std::memory_order_relaxed);
}

bool FaultHit(FaultPoint p) { return FaultInjector::Instance().Hit(p); }

}  // namespace csr
