#include "util/fault.h"

#include <chrono>
#include <thread>

namespace csr {

std::string_view FaultPointName(FaultPoint p) {
  switch (p) {
    case FaultPoint::kStorageRead:
      return "storage-read";
    case FaultPoint::kStorageWrite:
      return "storage-write";
    case FaultPoint::kViewDecode:
      return "view-decode";
    case FaultPoint::kPostingAdvance:
      return "posting-advance";
    case FaultPoint::kViewRead:
      return "view-read";
  }
  return "unknown";
}

namespace {

/// One SplitMix64 output for state index `n` of stream `seed` — the same
/// value SplitMix64(seed) would produce as its nth draw, but addressable
/// by index so concurrent hits can claim indexes with fetch_add.
uint64_t SplitMixAt(uint64_t seed, uint64_t n) {
  uint64_t z = seed + (n + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(FaultPoint p, uint64_t nth) {
  Slot& s = slots_[static_cast<size_t>(p)];
  if (nth == 0) nth = 1;
  s.hits.store(0, std::memory_order_relaxed);
  uint64_t prev = s.fail_at.exchange(nth, std::memory_order_relaxed);
  if (prev == 0) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::ArmRate(FaultPoint p, double rate, uint64_t seed) {
  Slot& s = slots_[static_cast<size_t>(p)];
  rate = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
  // rate == 1 must fire every hit: draw < 2^64 always holds only if the
  // threshold saturates, and (uint64_t)(1.0 * 2^64) would wrap to 0.
  uint64_t threshold =
      rate >= 1.0 ? ~0ULL
                  : static_cast<uint64_t>(rate * 18446744073709551616.0);
  s.rate_seed.store(seed, std::memory_order_relaxed);
  s.rate_seq.store(0, std::memory_order_relaxed);
  uint64_t prev = s.rate_threshold.exchange(threshold,
                                            std::memory_order_release);
  if (prev == 0 && threshold != 0) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else if (prev != 0 && threshold == 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::ArmDelay(FaultPoint p, uint64_t micros) {
  Slot& s = slots_[static_cast<size_t>(p)];
  uint64_t prev = s.delay_micros.exchange(micros, std::memory_order_release);
  if (prev == 0 && micros != 0) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else if (prev != 0 && micros == 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(FaultPoint p) {
  Slot& s = slots_[static_cast<size_t>(p)];
  uint64_t prev = s.fail_at.exchange(0, std::memory_order_relaxed);
  if (prev != 0) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  uint64_t rate_prev =
      s.rate_threshold.exchange(0, std::memory_order_relaxed);
  if (rate_prev != 0) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  uint64_t delay_prev = s.delay_micros.exchange(0, std::memory_order_relaxed);
  if (delay_prev != 0) armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    Disarm(static_cast<FaultPoint>(i));
  }
}

bool FaultInjector::Hit(FaultPoint p) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return false;
  Slot& s = slots_[static_cast<size_t>(p)];
  // The delay trigger slows the hit but never fires it: tests use it to
  // make one pipeline stage slow without introducing failures.
  uint64_t delay = s.delay_micros.load(std::memory_order_acquire);
  if (delay != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  uint64_t fail_at = s.fail_at.load(std::memory_order_acquire);
  if (fail_at != 0) {
    uint64_t h = s.hits.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (h == fail_at) {
      // One-shot: claim the trigger with a CAS so exactly one thread fires
      // per Arm(). The previous Disarm()-based path raced concurrent
      // callers — a re-Arm() between the counter check and the disarm
      // could be wiped out and armed_count_ double-decremented. If the CAS
      // loses (another thread fired, or a Disarm/Arm replaced the
      // trigger), this hit is an ordinary non-fault hit.
      if (s.fail_at.compare_exchange_strong(fail_at, 0,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        armed_count_.fetch_sub(1, std::memory_order_release);
        s.trips.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  uint64_t threshold = s.rate_threshold.load(std::memory_order_acquire);
  if (threshold == 0) return false;
  // Each hit claims a unique draw index; the decision for index K is a
  // pure function of (seed, K), so the number of trips over N hits is
  // identical on every run with the same seed, whatever the interleaving.
  uint64_t n = s.rate_seq.fetch_add(1, std::memory_order_relaxed);
  uint64_t draw = SplitMixAt(s.rate_seed.load(std::memory_order_relaxed), n);
  if (threshold != ~0ULL && draw >= threshold) return false;
  s.trips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::rate(FaultPoint p) const {
  uint64_t threshold = slots_[static_cast<size_t>(p)].rate_threshold.load(
      std::memory_order_relaxed);
  if (threshold == ~0ULL) return 1.0;
  return static_cast<double>(threshold) / 18446744073709551616.0;
}

bool FaultInjector::armed(FaultPoint p) const {
  const Slot& s = slots_[static_cast<size_t>(p)];
  return s.fail_at.load(std::memory_order_relaxed) != 0 ||
         s.rate_threshold.load(std::memory_order_relaxed) != 0;
}

uint64_t FaultInjector::hits(FaultPoint p) const {
  return slots_[static_cast<size_t>(p)].hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::trips(FaultPoint p) const {
  return slots_[static_cast<size_t>(p)].trips.load(std::memory_order_relaxed);
}

bool FaultHit(FaultPoint p) { return FaultInjector::Instance().Hit(p); }

}  // namespace csr
